package odns

import (
	"fmt"
	"strings"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/dns"
	"decoupling/internal/dnswire"
	"decoupling/internal/ledger"
)

// ecosystem wires: client -> recursive resolver -> oblivious resolver
// (.odns authority) -> origin auth server (example.com).
func ecosystem(t testing.TB, lg *ledger.Ledger) (*dns.Resolver, *ObliviousResolver, *dns.AuthServer) {
	t.Helper()
	z := dns.NewZone("example.com")
	for i, host := range []string{"www", "mail", "secret"} {
		if err := z.Add(dnswire.A(host+".example.com", 300, [4]byte{198, 51, 100, byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	origin := &dns.AuthServer{Name: "Origin", Zones: []*dns.Zone{z}, Ledger: lg}
	oblivious, err := NewObliviousResolver(origin, lg)
	if err != nil {
		t.Fatal(err)
	}
	recursive := dns.NewResolver("Resolver", []dns.Authority{oblivious, origin}, lg, nil)
	return recursive, oblivious, origin
}

func TestObliviousQueryResolves(t *testing.T) {
	recursive, _, _ := ecosystem(t, nil)
	client := NewClient("client-1", mustKey(t, recursive), recursive)
	resp, err := client.Query("www.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Answers[0].Data[3] != 0 {
		t.Errorf("A rdata = %v", resp.Answers[0].Data)
	}
}

// mustKey digs the oblivious resolver's key out of the resolver's
// authority list (test convenience).
func mustKey(t testing.TB, r *dns.Resolver) []byte {
	t.Helper()
	for _, a := range r.Auths {
		if o, ok := a.(*ObliviousResolver); ok {
			return o.PublicKey()
		}
	}
	t.Fatal("no oblivious resolver wired")
	return nil
}

func TestNXDomainPropagates(t *testing.T) {
	recursive, _, _ := ecosystem(t, nil)
	client := NewClient("client-1", mustKey(t, recursive), recursive)
	resp, err := client.Query("missing.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestUnservableInnerQueryServFail(t *testing.T) {
	recursive, _, _ := ecosystem(t, nil)
	client := NewClient("client-1", mustKey(t, recursive), recursive)
	resp, err := client.Query("outside.test", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestEncapsulateDecapsulateRoundTrip(t *testing.T) {
	raw := []byte("arbitrary binary \x00\xff payload for the qname")
	name, err := encapsulate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(name, "."+TLD) {
		t.Errorf("name = %q", name)
	}
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if len(label) > 63 {
			t.Errorf("label %q exceeds 63 bytes", label)
		}
	}
	back, err := decapsulate(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(raw) {
		t.Error("round trip mismatch")
	}
}

func TestEncapsulateRejectsOversize(t *testing.T) {
	if _, err := encapsulate(make([]byte, 300)); err == nil {
		t.Error("oversized encapsulation accepted")
	}
}

func TestDecapsulateRejectsForeignName(t *testing.T) {
	if _, err := decapsulate("www.example.com"); err != ErrBadEncapsulation {
		t.Errorf("err = %v", err)
	}
	if _, err := decapsulate("not-base32-!!!.odns"); err == nil {
		t.Error("bad base32 accepted")
	}
}

func TestGarbageQueryHandled(t *testing.T) {
	_, oblivious, _ := ecosystem(t, nil)
	q := dnswire.NewQuery(1, "aaaaaaaa.odns", dnswire.TypeTXT)
	resp := oblivious.Handle("resolver", q)
	if resp.RCode == dnswire.RCodeNoError {
		t.Error("garbage query answered successfully")
	}
	if _, dropped := oblivious.Stats(); dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

// TestDecouplingTable reproduces the paper's §3.2.2 table for ODNS.
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	recursive, oblivious, _ := ecosystem(t, lg)

	names := []string{"www.example.com", "mail.example.com", "secret.example.com"}
	for i := 0; i < 6; i++ {
		who := fmt.Sprintf("client-%d", i)
		name := names[i%len(names)]
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(dnswire.CanonicalName(name), who, "", core.Sensitive)
		client := NewClient(who, oblivious.PublicKey(), recursive)
		if _, err := client.Query(name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}

	expected := core.ObliviousDNS()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured system not decoupled: %s", v)
	}
}

// TestResolverObliviousResolverCollusion: the §3.2.2 non-collusion
// caveat, measured — the recursive resolver plus the oblivious resolver
// CAN link clients to queries (they share the query leg), which is why
// they must be different organizations.
func TestResolverObliviousResolverCollusion(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	recursive, oblivious, _ := ecosystem(t, lg)
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("client-%d", i)
		name := "secret.example.com"
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(dnswire.CanonicalName(name), who, "", core.Sensitive)
		client := NewClient(who, oblivious.PublicKey(), recursive)
		if _, err := client.Query(name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	// Resolver alone: cannot link (sees only ciphertext names).
	res := adversary.LinkSubjects(lg.Observations(), []string{"Resolver"})
	if rate := adversary.LinkageRate(res); rate != 0 {
		t.Errorf("resolver alone linked %.0f%%", rate*100)
	}
	// Resolver + Oblivious Resolver: coupled via the shared query leg.
	res = adversary.LinkSubjects(lg.Observations(), []string{"Resolver", ObliviousResolverName})
	if rate := adversary.LinkageRate(res); rate == 0 {
		t.Error("colluding resolver pair failed to link any client; the non-collusion caveat should be measurable")
	}
}

// TestResolverSeesOnlyCiphertext asserts the load-bearing negative: no
// observation by the recursive resolver contains a plaintext query name.
func TestResolverSeesOnlyCiphertext(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	recursive, oblivious, _ := ecosystem(t, lg)
	cls.RegisterData("secret.example.com.", "alice", "", core.Sensitive)
	client := NewClient("alice", oblivious.PublicKey(), recursive)
	if _, err := client.Query("secret.example.com", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	for _, o := range lg.ByObserver("Resolver") {
		if o.Kind == core.Data && o.Level > core.NonSensitive {
			t.Errorf("resolver observed sensitive data: %+v", o)
		}
		if strings.Contains(o.Value, "secret.example.com") && !strings.HasSuffix(o.Value, TLD) {
			t.Errorf("resolver saw plaintext query name: %q", o.Value)
		}
	}
}

func BenchmarkObliviousQuery(b *testing.B) {
	recursive, oblivious, _ := ecosystem(b, nil)
	client := NewClient("bench", oblivious.PublicKey(), recursive)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query("www.example.com", dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}
