package core

import "fmt"

// This file encodes the paper's Section 3 decoupling-analysis tables as
// static System models. They are the ground truth that the running
// implementations (internal/digitalcash, internal/odoh, ...) are checked
// against: each experiment derives an empirical table from an
// instrumented run and diffs it against the corresponding model here.
//
// Linkage handles in these models reflect what the paper's prose argues:
// adjacent protocol hops share a handle (they saw the same connection or
// the same bytes), while blind-signature issuance/redemption pairs and
// share uploads deliberately share nothing.

// DigitalCash is the §3.1.1 blind-signature digital-currency analysis:
//
//	| Buyer  | Signer (Bank) | Verifier (Bank) | Seller |
//	| (▲, ●) | (▲, ⊙)        | (△, ⊙/●)        | (△, ●) |
func DigitalCash() *System {
	return &System{
		Name:    "Digital Cash (blind signatures)",
		Section: "3.1.1",
		Entities: []Entity{
			{Name: "Buyer", User: true, Knows: Tuple{SensID(), SensData()}},
			// The signer authenticates the withdrawing customer (▲) but
			// signs only a blinded serial (⊙).
			{Name: "Signer (Bank)", User: false, Knows: Tuple{SensID(), NonSensData()},
				Links: []string{"withdrawal"}},
			// The verifier sees the coin and, at deposit, some purchase
			// context (⊙/●) but only the seller's identity, not the
			// buyer's (△).
			{Name: "Verifier (Bank)", User: false, Knows: Tuple{NonSensID(), PartialData()},
				Links: []string{"deposit"}},
			{Name: "Seller", User: false, Knows: Tuple{NonSensID(), SensData()},
				Links: []string{"purchase", "deposit"}},
		},
		Notes: "Blind signatures make withdrawal and spending unlinkable even if Signer and Verifier are the same organization.",
	}
}

// Mixnet is the §3.1.2 (Figure 1) analysis with n mixes:
//
//	| Sender | Mix 1  | ... | Mix N  | Receiver |
//	| (▲, ●) | (▲, ⊙) | ... | (△, ⊙) | (△, ●)   |
func Mixnet(n int) *System {
	if n < 1 {
		n = 1
	}
	s := &System{
		Name:    fmt.Sprintf("Mix-net (%d mixes)", n),
		Section: "3.1.2",
		Notes:   "Each mix decrypts one onion layer; only Mix 1 sees the sender's network identity, only the receiver sees the message.",
	}
	s.Entities = append(s.Entities, Entity{
		Name: "Sender", User: true, Knows: Tuple{SensID(), SensData()},
	})
	for i := 1; i <= n; i++ {
		e := Entity{
			Name:  fmt.Sprintf("Mix %d", i),
			Knows: Tuple{NonSensID(), NonSensData()},
			Links: []string{fmt.Sprintf("hop%d", i), fmt.Sprintf("hop%d", i+1)},
		}
		if i == 1 {
			// The first mix sees the sender's address.
			e.Knows = Tuple{SensID(), NonSensData()}
		}
		s.Entities = append(s.Entities, e)
	}
	s.Entities = append(s.Entities, Entity{
		Name:  "Receiver",
		Knows: Tuple{NonSensID(), SensData()},
		Links: []string{fmt.Sprintf("hop%d", n+1)},
	})
	return s
}

// PrivacyPass is the §3.2.1 (Figure 2) analysis:
//
//	| Client | Issuer | Origin |
//	| (▲, ●) | (▲, ⊙) | (△, ●) |
func PrivacyPass() *System {
	return &System{
		Name:    "Privacy Pass",
		Section: "3.2.1",
		Entities: []Entity{
			{Name: "Client", User: true, Knows: Tuple{SensID(), SensData()}},
			// The issuer authenticates the client (▲) but signs blinded
			// tokens (⊙) and learns nothing of the origin.
			{Name: "Issuer", Knows: Tuple{SensID(), NonSensData()},
				Links: []string{"issuance"}},
			// The origin sees the request (●) and a token that is
			// unlinkable to any issuance (△).
			{Name: "Origin", Knows: Tuple{NonSensID(), SensData()},
				Links: []string{"redemption"}},
		},
		Notes: "Tokens transfer trust: issuance and redemption share no linkable handle, so even Issuer+Origin collusion cannot join them.",
	}
}

// ObliviousDNS is the §3.2.2 analysis covering both ODNS and ODoH
// (resolver = ODoH Oblivious Proxy, oblivious resolver = Oblivious
// Target):
//
//	| Client | Resolver | Oblivious Resolver | Origin |
//	| (▲, ●) | (▲, ⊙)   | (△, ●)             | (△, ●) |
func ObliviousDNS() *System {
	return &System{
		Name:    "Oblivious DNS",
		Section: "3.2.2",
		Entities: []Entity{
			{Name: "Client", User: true, Knows: Tuple{SensID(), SensData()}},
			// The client's recursive resolver (ODoH proxy) sees who is
			// asking (▲) but queries are encrypted (⊙).
			{Name: "Resolver", Knows: Tuple{SensID(), NonSensData()},
				Links: []string{"proxy-leg", "target-leg"}},
			// The oblivious resolver decrypts and resolves the query (●)
			// but sees only the proxy's address (△).
			{Name: "Oblivious Resolver", Knows: Tuple{NonSensID(), SensData()},
				Links: []string{"target-leg", "recursion"}},
			{Name: "Origin", Knows: Tuple{NonSensID(), SensData()},
				Links: []string{"recursion"}},
		},
		Notes: "Privacy holds as long as Resolver and Oblivious Resolver are non-colluding organizations.",
	}
}

// PGPP is the §3.2.3 analysis, with the identity decomposed into the
// human identity ▲_H and the network identity ▲_N (shuffled IMSIs are
// the non-sensitive △_N):
//
//	| User           | PGPP-GW        | NGC            |
//	| (▲_H, ▲_N, ●)  | (▲_H, △_N, ⊙)  | (△_H, △_N, ●)  |
func PGPP() *System {
	return &System{
		Name:    "Pretty Good Phone Privacy",
		Section: "3.2.3",
		Entities: []Entity{
			{Name: "User", User: true,
				Knows: Tuple{SensID("H"), SensID("N"), SensData()}},
			// The gateway bills and authenticates (knows the human, ▲_H)
			// but issues blind tokens and never sees mobility data (⊙).
			{Name: "PGPP-GW",
				Knows: Tuple{SensID("H"), NonSensID("N"), NonSensData()},
				Links: []string{"billing"}},
			// The core sees connectivity and location events (●) keyed
			// only by shuffled, non-sensitive identifiers (△_H, △_N).
			{Name: "NGC",
				Knows: Tuple{NonSensID("H"), NonSensID("N"), SensData()},
				Links: []string{"attach"}},
		},
		Notes: "Billing/authentication decoupled from connectivity; blind token authentication makes billing and attach events unlinkable.",
	}
}

// MPR is the §3.2.4 Multi-Party Relay (iCloud Private Relay-style)
// analysis:
//
//	| User   | Relay 1 | Relay 2  | Origin |
//	| (▲, ●) | (▲, ⊙)  | (△, ⊙/●) | (△, ●) |
func MPR() *System {
	return &System{
		Name:    "Multi-Party Relay",
		Section: "3.2.4",
		Entities: []Entity{
			{Name: "User", User: true, Knows: Tuple{SensID(), SensData()}},
			{Name: "Relay 1", Knows: Tuple{SensID(), NonSensData()},
				Links: []string{"client-conn", "inner-conn"}},
			// Relay 2 may learn limited request information such as the
			// origin FQDN (⊙/●) but sees the user only as a member of a
			// network aggregate (△).
			{Name: "Relay 2", Knows: Tuple{NonSensID(), PartialData()},
				Links: []string{"inner-conn", "origin-conn"}},
			{Name: "Origin", Knows: Tuple{NonSensID(), SensData()},
				Links: []string{"origin-conn"}},
		},
		Notes: "Two nested HTTP CONNECT tunnels operated by distinct organizations.",
	}
}

// PPM is the §3.2.5 private aggregate statistics analysis. The paper's
// table shows one aggregator; n generalizes it (§4.2 discusses adding
// aggregators against collusion). Aggregators hold shares that are
// individually uniform but jointly reconstruct client inputs, expressed
// with a SharedSecret over all aggregators.
//
//	| Client | Aggregator | Collector |
//	| (▲, ●) | (▲, ⊙)     | (△, ⊙)    |
func PPM(n int) *System {
	if n < 1 {
		n = 1
	}
	s := &System{
		Name:    fmt.Sprintf("Private Aggregate Statistics (%d aggregators)", n),
		Section: "3.2.5",
		Notes:   "Multi-party computation between non-colluding aggregators; the collector sees only the aggregate.",
	}
	s.Entities = append(s.Entities, Entity{
		Name: "Client", User: true, Knows: Tuple{SensID(), SensData()},
	})
	var holders []string
	for i := 1; i <= n; i++ {
		name := "Aggregator"
		if n > 1 {
			name = fmt.Sprintf("Aggregator %d", i)
		}
		holders = append(holders, name)
		s.Entities = append(s.Entities, Entity{
			Name:  name,
			Knows: Tuple{SensID(), NonSensData()},
			Links: []string{"upload", "aggregate"},
		})
	}
	s.Entities = append(s.Entities, Entity{
		Name:  "Collector",
		Knows: Tuple{NonSensID(), NonSensData()},
		Links: []string{"aggregate"},
	})
	s.SharedSecrets = []SharedSecret{{
		Name:    "input shares",
		Holders: holders,
		Yields:  SensData(),
	}}
	return s
}

// VPN is the §3.3 cautionary-tale analysis:
//
//	| Client | VPN Server | Origin |
//	| (▲, ●) | (▲, ●)     | (△, ●) |
func VPN() *System {
	return &System{
		Name:    "Centralized VPN",
		Section: "3.3",
		Entities: []Entity{
			{Name: "Client", User: true, Knows: Tuple{SensID(), SensData()}},
			// The single trusted intermediary sees all user activity
			// bundled with user identity: (▲, ●).
			{Name: "VPN Server", Knows: Tuple{SensID(), SensData()},
				Links: []string{"client-conn", "origin-conn"}},
			{Name: "Origin", Knows: Tuple{NonSensID(), SensData()},
				Links: []string{"origin-conn"}},
		},
		Notes: "Funneling all traffic through one trusted party creates a single locus of observation.",
	}
}

// ECH is the §3.3 Encrypted ClientHello discussion: ECH hides the
// handshake from the network but does not change what the terminating
// TLS server sees, so the server remains (▲, ●).
func ECH() *System {
	return &System{
		Name:    "TLS Encrypted ClientHello",
		Section: "3.3",
		Entities: []Entity{
			{Name: "Client", User: true, Knows: Tuple{SensID(), SensData()}},
			// With ECH the on-path network sees the client address (▲)
			// but no longer the inner SNI (⊙).
			{Name: "Network", Knows: Tuple{SensID(), NonSensData()},
				Links: []string{"wire"}},
			{Name: "TLS Server", Knows: Tuple{SensID(), SensData()},
				Links: []string{"wire", "session"}},
		},
		Notes: "ECH falls short of fully applying the Decoupling Principle: the server still couples identity and data.",
	}
}

// Registry returns all paper systems at their table-default parameters,
// keyed by a short stable id used by cmd/decouple and the experiments.
func Registry() map[string]*System {
	return map[string]*System{
		"digitalcash": DigitalCash(),
		"mixnet":      Mixnet(3),
		"privacypass": PrivacyPass(),
		"odns":        ObliviousDNS(),
		"pgpp":        PGPP(),
		"mpr":         MPR(),
		"ppm":         PPM(2),
		"vpn":         VPN(),
		"ech":         ECH(),
	}
}
