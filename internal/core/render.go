package core

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// RenderTable renders a system's decoupling analysis in the layout the
// paper uses: one column per entity, a single row of knowledge tuples.
//
//	| Client | Issuer | Origin |
//	|--------|--------|--------|
//	| (▲, ●) | (▲, ⊙) | (△, ●) |
func RenderTable(s *System) string {
	headers := make([]string, len(s.Entities))
	cells := make([]string, len(s.Entities))
	for i, e := range s.Entities {
		headers[i] = e.Name
		cells[i] = e.Knows.Symbol()
	}
	return renderRows(headers, [][]string{cells})
}

// RenderComparison renders expected (paper) and measured (implementation)
// tuples side by side, one row each.
func RenderComparison(expected, measured *System) string {
	headers := make([]string, 0, len(expected.Entities)+1)
	headers = append(headers, "")
	exp := []string{"paper"}
	mea := []string{"measured"}
	for _, e := range expected.Entities {
		headers = append(headers, e.Name)
		exp = append(exp, e.Knows.Symbol())
		cell := "—"
		if m := measured.Entity(e.Name); m != nil {
			cell = m.Knows.Symbol()
		}
		mea = append(mea, cell)
	}
	return renderRows(headers, [][]string{exp, mea})
}

// displayWidth approximates terminal columns for the mixed ASCII/symbol
// strings in these tables; the paper's symbols are single-cell runes.
func displayWidth(s string) int { return utf8.RuneCountInString(s) }

func pad(s string, w int) string {
	return s + strings.Repeat(" ", w-displayWidth(s))
}

func renderRows(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if w := displayWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %s |", pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
