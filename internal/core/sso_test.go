package core

import "testing"

// The paper's §2.2 observes that authentication infrastructure is
// simultaneously decentralized and centralized — "such as OAuth and
// SSO, with a view into the uses of a huge range of services" — and
// that auth often creates "a non-repudiable record of who used a
// network service when, how, and even why". These tests show the
// framework expressing that observation: a centralized identity
// provider couples who-you-are with a cross-service activity record,
// and the Privacy Pass-style fix (per-service unlinkable credentials)
// removes the coupling.

func ssoModel() *System {
	return &System{
		Name:    "Centralized SSO",
		Section: "2.2",
		Entities: []Entity{
			{Name: "User", User: true, Knows: Tuple{SensID(), SensData()}},
			// The IdP authenticates the user (▲) and, by issuing a token
			// per relying party, records which services they use when —
			// a sensitive activity stream (●).
			{Name: "Identity Provider", Knows: Tuple{SensID(), SensData()},
				Links: []string{"login", "rp-1", "rp-2"}},
			{Name: "Service A", Knows: Tuple{SensID(), SensData()}, Links: []string{"rp-1"}},
			{Name: "Service B", Knows: Tuple{SensID(), SensData()}, Links: []string{"rp-2"}},
		},
	}
}

func anonymousCredentialModel() *System {
	return &System{
		Name:    "SSO via unlinkable credentials",
		Section: "2.2/3.2.1",
		Entities: []Entity{
			{Name: "User", User: true, Knows: Tuple{SensID(), SensData()}},
			// The issuer authenticates (▲) but issues blind credentials:
			// it learns nothing about which services are visited (⊙).
			{Name: "Credential Issuer", Knows: Tuple{SensID(), NonSensData()},
				Links: []string{"issuance"}},
			// Services see activity (●) from pseudonymous credential
			// holders (△) and cannot link across services.
			{Name: "Service A", Knows: Tuple{NonSensID(), SensData()}, Links: []string{"rp-1"}},
			{Name: "Service B", Knows: Tuple{NonSensID(), SensData()}, Links: []string{"rp-2"}},
		},
	}
}

func TestSSOIsCoupledAtTheIdP(t *testing.T) {
	t.Parallel()
	v := mustAnalyze(t, ssoModel())
	if v.Decoupled {
		t.Error("centralized SSO reported decoupled")
	}
	found := false
	for _, e := range v.CoupledEntities {
		if e == "Identity Provider" {
			found = true
		}
	}
	if !found {
		t.Errorf("IdP not flagged as coupled: %v", v.CoupledEntities)
	}
}

func TestUnlinkableCredentialsDecoupleSSO(t *testing.T) {
	t.Parallel()
	v := mustAnalyze(t, anonymousCredentialModel())
	if !v.Decoupled {
		t.Errorf("credential-based SSO not decoupled: %s", v)
	}
	// Blind issuance severs the issuer from the services: no coalition
	// links identity to activity.
	if v.Degree != 0 {
		t.Errorf("degree = %d (coalition %v), want 0 — blind credentials leave no join key", v.Degree, v.MinCoalition)
	}
}
