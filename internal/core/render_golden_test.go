package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run %s -update ./%s` to create it)", err, t.Name(), "internal/core")
	}
	if got != string(want) {
		t.Errorf("output diverged from %s (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestRenderComparisonGolden pins the exact side-by-side table bytes —
// symbol alignment included — so formatting regressions are caught
// instead of eyeballed.
func TestRenderComparisonGolden(t *testing.T) {
	t.Parallel()
	expected := PrivacyPass()
	// A measured system that diverges on one entity and is missing
	// another, exercising the "—" placeholder path.
	measured := &System{
		Name: expected.Name + " (measured)",
		Entities: []Entity{
			{Name: "Client", User: true, Knows: Tuple{SensID(), SensData()}},
			{Name: "Issuer", Knows: Tuple{SensID(), SensData()}},
		},
	}
	checkGolden(t, "render_comparison", RenderComparison(expected, measured))
}

// TestRenderTableGolden pins the single-system layout.
func TestRenderTableGolden(t *testing.T) {
	t.Parallel()
	checkGolden(t, "render_table", RenderTable(Mixnet(3)))
}
