package core

import (
	"math/rand"
	"testing"
)

// Invariant properties of Analyze, checked over all registry systems
// and randomized variations.

// TestAnalyzeOrderInvariant: shuffling entity order never changes the
// verdict or degree.
func TestAnalyzeOrderInvariant(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for id, sys := range Registry() {
		base := mustAnalyze(t, sys)
		for trial := 0; trial < 5; trial++ {
			shuffled := &System{
				Name: sys.Name, Section: sys.Section, SharedSecrets: sys.SharedSecrets,
				Entities: append([]Entity(nil), sys.Entities...),
			}
			rng.Shuffle(len(shuffled.Entities), func(i, j int) {
				shuffled.Entities[i], shuffled.Entities[j] = shuffled.Entities[j], shuffled.Entities[i]
			})
			got := mustAnalyze(t, shuffled)
			if got.Decoupled != base.Decoupled || got.Degree != base.Degree {
				t.Errorf("%s: shuffled verdict (%v, %d) != base (%v, %d)",
					id, got.Decoupled, got.Degree, base.Decoupled, base.Degree)
			}
		}
	}
}

// TestAnalyzeIgnoresHarmlessBystander: adding an isolated (△, ⊙) entity
// never changes the verdict or degree.
func TestAnalyzeIgnoresHarmlessBystander(t *testing.T) {
	t.Parallel()
	for id, sys := range Registry() {
		base := mustAnalyze(t, sys)
		extended := &System{
			Name: sys.Name, Section: sys.Section, SharedSecrets: sys.SharedSecrets,
			Entities: append(append([]Entity(nil), sys.Entities...), Entity{
				Name:  "Bystander",
				Knows: Tuple{NonSensID(), NonSensData()},
				Links: []string{"bystander-only-handle"},
			}),
		}
		got := mustAnalyze(t, extended)
		if got.Decoupled != base.Decoupled || got.Degree != base.Degree {
			t.Errorf("%s: bystander changed verdict (%v, %d) -> (%v, %d)",
				id, base.Decoupled, base.Degree, got.Decoupled, got.Degree)
		}
	}
}

// TestAnalyzeMonotoneInKnowledge: raising any entity's knowledge level
// can only make the system easier to attack — the degree never
// increases, and a decoupled verdict can only flip to not-decoupled,
// never the reverse.
func TestAnalyzeMonotoneInKnowledge(t *testing.T) {
	t.Parallel()
	for id, sys := range Registry() {
		base := mustAnalyze(t, sys)
		for i, e := range sys.Entities {
			if e.User {
				continue
			}
			upgraded := &System{
				Name: sys.Name, Section: sys.Section, SharedSecrets: sys.SharedSecrets,
				Entities: append([]Entity(nil), sys.Entities...),
			}
			knows := append(Tuple(nil), e.Knows...)
			for j := range knows {
				knows[j].Level = Sensitive
			}
			upgraded.Entities[i].Knows = knows
			got := mustAnalyze(t, upgraded)
			if base.Degree > 0 && (got.Degree == 0 || got.Degree > base.Degree) {
				t.Errorf("%s: upgrading %q raised degree %d -> %d",
					id, e.Name, base.Degree, got.Degree)
			}
			if !base.Decoupled && got.Decoupled {
				t.Errorf("%s: upgrading %q flipped verdict to decoupled", id, e.Name)
			}
		}
	}
}

// TestAnalyzeCoalitionIsActuallyMinimal: no proper subset of the
// reported minimum coalition re-couples.
func TestAnalyzeCoalitionIsActuallyMinimal(t *testing.T) {
	t.Parallel()
	for id, sys := range Registry() {
		v := mustAnalyze(t, sys)
		if v.Degree <= 1 {
			continue
		}
		members := make([]Entity, 0, len(v.MinCoalition))
		for _, name := range v.MinCoalition {
			members = append(members, *sys.Entity(name))
		}
		// Leave out each member in turn: the remainder must not couple.
		for skip := range members {
			var sub []Entity
			for i, m := range members {
				if i != skip {
					sub = append(sub, m)
				}
			}
			if coalitionCoupled(sys, sub) {
				t.Errorf("%s: coalition %v is not minimal (works without %s)",
					id, v.MinCoalition, members[skip].Name)
			}
		}
		// And the full reported coalition must couple.
		if !coalitionCoupled(sys, members) {
			t.Errorf("%s: reported min coalition %v does not actually couple", id, v.MinCoalition)
		}
	}
}

// TestUserNeverInCoalition: the coalition search is over service
// entities only.
func TestUserNeverInCoalition(t *testing.T) {
	t.Parallel()
	for id, sys := range Registry() {
		v := mustAnalyze(t, sys)
		user := sys.User().Name
		for _, m := range v.MinCoalition {
			if m == user {
				t.Errorf("%s: user %q appears in the coalition", id, user)
			}
		}
	}
}
