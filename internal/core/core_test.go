package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestComponentSymbols(t *testing.T) {
	t.Parallel()
	cases := []struct {
		c    Component
		want string
	}{
		{SensID(), "▲"},
		{NonSensID(), "△"},
		{SensData(), "●"},
		{NonSensData(), "⊙"},
		{PartialData(), "⊙/●"},
		{SensID("H"), "▲_H"},
		{NonSensID("N"), "△_N"},
	}
	for _, c := range cases {
		if got := c.c.Symbol(); got != c.want {
			t.Errorf("Symbol(%+v) = %q, want %q", c.c, got, c.want)
		}
	}
}

func TestTupleSymbol(t *testing.T) {
	t.Parallel()
	tp := Tuple{SensID("H"), NonSensID("N"), NonSensData()}
	if got := tp.Symbol(); got != "(▲_H, △_N, ⊙)" {
		t.Errorf("Symbol = %q", got)
	}
}

func TestCoupled(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		t    Tuple
		want bool
	}{
		{"user", Tuple{SensID(), SensData()}, true},
		{"vpn server", Tuple{SensID(), SensData()}, true},
		{"issuer", Tuple{SensID(), NonSensData()}, false},
		{"origin", Tuple{NonSensID(), SensData()}, false},
		{"relay2 partial counts", Tuple{SensID(), PartialData()}, true},
		{"partial without identity", Tuple{NonSensID(), PartialData()}, false},
		{"pgpp gw", Tuple{SensID("H"), NonSensID("N"), NonSensData()}, false},
		{"empty", Tuple{}, false},
	}
	for _, c := range cases {
		if got := c.t.Coupled(); got != c.want {
			t.Errorf("%s: Coupled(%s) = %v, want %v", c.name, c.t.Symbol(), got, c.want)
		}
	}
}

func TestMergeTakesMaxLevel(t *testing.T) {
	t.Parallel()
	a := Tuple{SensID(), NonSensData()}
	b := Tuple{NonSensID(), SensData()}
	m := a.Merge(b)
	if !m.Coupled() {
		t.Errorf("merge of (▲,⊙) and (△,●) = %s, expected coupled", m.Symbol())
	}
	if len(m) != 2 {
		t.Errorf("merge produced %d components, want 2", len(m))
	}
}

func TestMergeKeepsLabelsDistinct(t *testing.T) {
	t.Parallel()
	a := Tuple{SensID("H"), NonSensID("N")}
	b := Tuple{SensID("N")}
	m := a.Merge(b)
	if len(m) != 2 {
		t.Fatalf("merge = %s, want two labeled identity components", m.Symbol())
	}
	want := Tuple{SensID("H"), SensID("N")}
	if !m.Equal(want) {
		t.Errorf("merge = %s, want %s", m.Symbol(), want.Symbol())
	}
}

// Property: Merge is commutative and idempotent with respect to Equal.
func TestMergeProperties(t *testing.T) {
	t.Parallel()
	gen := func(seed int64) Tuple {
		// Small deterministic tuple generator over seeds.
		var tp Tuple
		for i := 0; i < 3; i++ {
			bitsv := seed >> (4 * i)
			c := Component{
				Kind:  Kind(bitsv & 1),
				Level: Level(uint64(bitsv>>1) % 3),
			}
			if bitsv&8 != 0 {
				c.Label = "H"
			}
			tp = append(tp, c)
		}
		return tp
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		if !a.Merge(b).Equal(b.Merge(a)) {
			return false
		}
		return a.Merge(a).Equal(a.Merge(Tuple{}).Merge(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	t.Parallel()
	a := Tuple{SensID(), SensData()}
	b := Tuple{SensData(), SensID()}
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	c := Tuple{SensID(), NonSensData()}
	if a.Equal(c) {
		t.Error("tuples with different levels compared equal")
	}
}

func TestValidate(t *testing.T) {
	t.Parallel()
	s := &System{Name: "x", Entities: []Entity{{Name: "only"}}}
	if err := s.Validate(); err == nil {
		t.Error("system without user validated")
	}
	s = &System{Name: "x", Entities: []Entity{
		{Name: "u", User: true}, {Name: "u"},
	}}
	if err := s.Validate(); err == nil {
		t.Error("system with duplicate entity validated")
	}
	s = &System{Entities: []Entity{{Name: "u", User: true}}}
	if err := s.Validate(); err == nil {
		t.Error("unnamed system validated")
	}
	if err := VPN().Validate(); err != nil {
		t.Errorf("VPN model: %v", err)
	}
}

func TestRegistryAllValidate(t *testing.T) {
	t.Parallel()
	for id, s := range Registry() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if s.Section == "" {
			t.Errorf("%s: missing paper section", id)
		}
	}
}

func TestRenderTableShape(t *testing.T) {
	t.Parallel()
	out := RenderTable(PrivacyPass())
	if !strings.Contains(out, "Client") || !strings.Contains(out, "(▲, ●)") {
		t.Errorf("rendered table missing expected cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines, want 3 (header, rule, row)", len(lines))
	}
}

func TestRenderComparison(t *testing.T) {
	t.Parallel()
	expected := PrivacyPass()
	measured := PrivacyPass()
	measured.Entity("Issuer").Knows = Tuple{SensID(), SensData()}
	out := RenderComparison(expected, measured)
	if !strings.Contains(out, "paper") || !strings.Contains(out, "measured") {
		t.Errorf("comparison missing row labels:\n%s", out)
	}
}

func TestCompareTuples(t *testing.T) {
	t.Parallel()
	expected := PrivacyPass()
	measured := PrivacyPass()
	if diffs := CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("identical systems diff: %v", diffs)
	}
	measured.Entity("Issuer").Knows = Tuple{SensID(), SensData()}
	diffs := CompareTuples(expected, measured)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "Issuer") {
		t.Errorf("diffs = %v", diffs)
	}
	measured.Entities = measured.Entities[:2] // drop Origin
	diffs = CompareTuples(expected, measured)
	if len(diffs) != 2 {
		t.Errorf("diffs after dropping entity = %v", diffs)
	}
}
