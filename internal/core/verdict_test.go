package core

import (
	"reflect"
	"strings"
	"testing"
)

func mustAnalyze(t *testing.T, s *System) Verdict {
	t.Helper()
	v, err := Analyze(s)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", s.Name, err)
	}
	return v
}

// TestPaperVerdicts pins the headline result for every Section 3 table:
// which systems are decoupled and which are the cautionary tales.
func TestPaperVerdicts(t *testing.T) {
	t.Parallel()
	cases := []struct {
		sys       *System
		decoupled bool
		degree    int
	}{
		{DigitalCash(), true, 0},  // blind signatures: unlinkable even under full collusion
		{Mixnet(1), true, 2},      // single mix: mix+receiver collusion couples
		{Mixnet(3), true, 4},      // all mixes plus receiver must collude
		{PrivacyPass(), true, 0},  // issuance/redemption unlinkable
		{ObliviousDNS(), true, 2}, // resolver + oblivious resolver
		{PGPP(), true, 0},         // blind token auth: billing/attach unlinkable
		{MPR(), true, 2},          // relay 1 + relay 2
		{PPM(2), true, 2},         // both aggregators recombine shares
		{PPM(5), true, 5},         // all five must collude
		{VPN(), false, 1},         // single locus of observation
		{ECH(), false, 1},         // TLS server still coupled
	}
	for _, c := range cases {
		v := mustAnalyze(t, c.sys)
		if v.Decoupled != c.decoupled {
			t.Errorf("%s: decoupled = %v, want %v", c.sys.Name, v.Decoupled, c.decoupled)
		}
		if v.Degree != c.degree {
			t.Errorf("%s: degree = %d (coalition %v), want %d", c.sys.Name, v.Degree, v.MinCoalition, c.degree)
		}
	}
}

func TestVPNCoupledEntity(t *testing.T) {
	t.Parallel()
	v := mustAnalyze(t, VPN())
	if !reflect.DeepEqual(v.CoupledEntities, []string{"VPN Server"}) {
		t.Errorf("CoupledEntities = %v", v.CoupledEntities)
	}
	if !reflect.DeepEqual(v.MinCoalition, []string{"VPN Server"}) {
		t.Errorf("MinCoalition = %v", v.MinCoalition)
	}
}

func TestMixnetPartialCollusionInsufficient(t *testing.T) {
	t.Parallel()
	// Mix 1 + Receiver collude but lack the intermediate mixes: their
	// handles do not chain, so they cannot join identity with data.
	if coalitionCoupled(Mixnet(3), []Entity{
		*Mixnet(3).Entity("Mix 1"),
		*Mixnet(3).Entity("Receiver"),
	}) {
		t.Error("mix 1 + receiver coupled without the intermediate mixes")
	}
	// The complete chain does couple.
	s := Mixnet(2)
	if !coalitionCoupled(s, []Entity{
		*s.Entity("Mix 1"), *s.Entity("Mix 2"), *s.Entity("Receiver"),
	}) {
		t.Error("complete mix chain plus receiver did not couple")
	}
}

func TestMixnetDegreeGrowsWithHops(t *testing.T) {
	t.Parallel()
	prev := 0
	for n := 1; n <= 5; n++ {
		v := mustAnalyze(t, Mixnet(n))
		if v.Degree <= prev {
			t.Errorf("Mixnet(%d) degree %d did not grow (prev %d)", n, v.Degree, prev)
		}
		prev = v.Degree
	}
}

func TestPPMSingleAggregatorIsNaive(t *testing.T) {
	t.Parallel()
	// §3.2.5: with one server acting as aggregator and collector, that
	// server alone can reconstruct inputs — the naive non-private design.
	v := mustAnalyze(t, PPM(1))
	if v.Degree != 1 {
		t.Errorf("PPM(1) degree = %d, want 1 (single server reconstructs alone)", v.Degree)
	}
}

func TestPPMCollectorNotInCoalition(t *testing.T) {
	t.Parallel()
	v := mustAnalyze(t, PPM(3))
	for _, m := range v.MinCoalition {
		if m == "Collector" {
			t.Error("collector should not be needed to re-couple; aggregators suffice")
		}
	}
}

func TestSharedSecretRequiresAllHolders(t *testing.T) {
	t.Parallel()
	s := PPM(3)
	members := []Entity{*s.Entity("Aggregator 1"), *s.Entity("Aggregator 2")}
	if coalitionCoupled(s, members) {
		t.Error("two of three aggregators reconstructed shares")
	}
	members = append(members, *s.Entity("Aggregator 3"))
	if !coalitionCoupled(s, members) {
		t.Error("all three aggregators failed to reconstruct")
	}
}

func TestEntitiesWithoutLinksAreConservativelyLinkable(t *testing.T) {
	t.Parallel()
	s := &System{
		Name: "unmodeled links",
		Entities: []Entity{
			{Name: "User", User: true, Knows: Tuple{SensID(), SensData()}},
			{Name: "A", Knows: Tuple{SensID(), NonSensData()}},    // no Links declared
			{Name: "B", Knows: Tuple{NonSensID(), SensData()}},    // no Links declared
			{Name: "C", Knows: Tuple{NonSensID(), NonSensData()}}, // irrelevant
		},
	}
	v := mustAnalyze(t, s)
	if v.Degree != 2 {
		t.Errorf("degree = %d, want 2 (A+B conservatively linkable)", v.Degree)
	}
}

func TestAnalyzeRejectsInvalidSystem(t *testing.T) {
	t.Parallel()
	if _, err := Analyze(&System{Name: "no user"}); err == nil {
		t.Error("Analyze accepted a system without a user")
	}
}

func TestVerdictString(t *testing.T) {
	t.Parallel()
	v := mustAnalyze(t, MPR())
	s := v.String()
	if !strings.Contains(s, "DECOUPLED") || !strings.Contains(s, "degree 2") {
		t.Errorf("String() = %q", s)
	}
	v2 := mustAnalyze(t, VPN())
	if !strings.Contains(v2.String(), "NOT DECOUPLED") {
		t.Errorf("String() = %q", v2.String())
	}
}

func BenchmarkAnalyzeMixnet5(b *testing.B) {
	s := Mixnet(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(s); err != nil {
			b.Fatal(err)
		}
	}
}
