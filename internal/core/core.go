// Package core implements the Decoupling Principle framework of
// Schmitt, Iyengar, Wood & Raghavan (HotNets '22) §2.4 as an executable
// model.
//
// The paper's notation:
//
//	▲  sensitive user identity known by some entity
//	△  non-sensitive user identity
//	●  sensitive user data
//	⊙  non-sensitive user data
//
// An entity's knowledge is a tuple of such components (possibly with
// labeled sub-identities, e.g. PGPP's human identity ▲_H vs network
// identity ▲_N). A system is *decoupled* — and thus benefits from the
// privacy the principle confers — iff only the user holds (▲, ●): every
// other entity may hold at most one of ▲ or ●, with all remaining tuple
// entries △ or ⊙.
//
// Beyond the paper's static notation, the model adds linkage handles so
// that coalition (collusion) analysis distinguishes entities that merely
// both hold information from entities that can actually *join* their
// observations (§4.1, §5.2): colluding parties re-couple identity with
// data only if a chain of shared handles connects them.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes the two axes of the paper's analysis: who you are
// versus what you do.
type Kind int

const (
	// Identity marks a component describing who the user is (▲ / △).
	Identity Kind = iota
	// Data marks a component describing what the user does (● / ⊙).
	Data
)

// String returns "identity" or "data".
func (k Kind) String() string {
	switch k {
	case Identity:
		return "identity"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Level is the sensitivity of a known component.
type Level int

const (
	// NonSensitive is △ (identity) or ⊙ (data).
	NonSensitive Level = iota
	// Partial is the paper's "⊙/●" — some sensitive detail leaks (e.g.
	// Private Relay's second hop learning the origin FQDN) without the
	// full sensitive item. Partial counts as sensitive for the verdict.
	Partial
	// Sensitive is ▲ (identity) or ● (data).
	Sensitive
)

// String returns a short name for the level.
func (l Level) String() string {
	switch l {
	case NonSensitive:
		return "non-sensitive"
	case Partial:
		return "partial"
	case Sensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Component is one entry of a knowledge tuple: a kind, an optional label
// distinguishing sub-identities or data facets (e.g. "H" and "N" in the
// PGPP analysis), and the sensitivity level at which the entity knows it.
type Component struct {
	Kind  Kind
	Label string
	Level Level
}

// Symbol renders the component in the paper's notation: ▲, △, ●, ⊙ or
// ⊙/● for partial data, with a _label subscript when labeled.
func (c Component) Symbol() string {
	var s string
	switch c.Kind {
	case Identity:
		switch c.Level {
		case Sensitive:
			s = "▲"
		case Partial:
			s = "△/▲"
		default:
			s = "△"
		}
	case Data:
		switch c.Level {
		case Sensitive:
			s = "●"
		case Partial:
			s = "⊙/●"
		default:
			s = "⊙"
		}
	}
	if c.Label != "" {
		s += "_" + c.Label
	}
	return s
}

// Tuple is an entity's knowledge: an ordered list of components. Order
// follows the paper's tables (identities first, then data).
type Tuple []Component

// Symbol renders the tuple as the paper writes it, e.g. "(▲_H, △_N, ⊙)".
func (t Tuple) Symbol() string {
	parts := make([]string, len(t))
	for i, c := range t {
		parts[i] = c.Symbol()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// knowsSensitive reports whether the tuple holds any component of the
// given kind at Sensitive (or, for data, Partial) level. Partial data
// counts because a partially sensitive datum joined with a sensitive
// identity is already a privacy violation (§3.2.4's FQDN example).
func (t Tuple) knowsSensitive(k Kind) bool {
	for _, c := range t {
		if c.Kind != k {
			continue
		}
		if c.Level == Sensitive || (k == Data && c.Level == Partial) {
			return true
		}
	}
	return false
}

// Coupled reports whether this tuple alone re-couples who the user is
// with what they do: it holds both a sensitive identity and sensitive
// (or partially sensitive) data.
func (t Tuple) Coupled() bool {
	return t.knowsSensitive(Identity) && t.knowsSensitive(Data)
}

// Merge unions two tuples, keeping the maximum level per (kind, label).
// It models information pooling under collusion.
func (t Tuple) Merge(other Tuple) Tuple {
	type key struct {
		k     Kind
		label string
	}
	best := map[key]Component{}
	order := []key{}
	add := func(c Component) {
		k := key{c.Kind, c.Label}
		if prev, ok := best[k]; ok {
			if c.Level > prev.Level {
				best[k] = c
			}
			return
		}
		best[k] = c
		order = append(order, k)
	}
	for _, c := range t {
		add(c)
	}
	for _, c := range other {
		add(c)
	}
	// Stable paper-style ordering: identities before data, then label.
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].k != order[j].k {
			return order[i].k < order[j].k
		}
		return order[i].label < order[j].label
	})
	out := make(Tuple, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}

// Equal reports whether two tuples contain the same components at the
// same levels, ignoring order.
func (t Tuple) Equal(other Tuple) bool {
	norm := func(x Tuple) string {
		parts := make([]string, len(x))
		for i, c := range x {
			parts[i] = fmt.Sprintf("%d|%s|%d", c.Kind, c.Label, c.Level)
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}
	return norm(t) == norm(other)
}

// Convenience constructors matching the paper's symbols.

// SensID returns ▲ (optionally labeled, e.g. SensID("H") for ▲_H).
func SensID(label ...string) Component { return comp(Identity, Sensitive, label) }

// NonSensID returns △.
func NonSensID(label ...string) Component { return comp(Identity, NonSensitive, label) }

// SensData returns ●.
func SensData(label ...string) Component { return comp(Data, Sensitive, label) }

// NonSensData returns ⊙.
func NonSensData(label ...string) Component { return comp(Data, NonSensitive, label) }

// PartialData returns ⊙/●.
func PartialData(label ...string) Component { return comp(Data, Partial, label) }

func comp(k Kind, l Level, label []string) Component {
	c := Component{Kind: k, Level: l}
	if len(label) > 0 {
		c.Label = label[0]
	}
	return c
}

// Entity is a party in the decoupling analysis: the user themself, or a
// service/infrastructure actor. Links lists opaque correlation handles
// the entity holds (session ids, observed ciphertext digests, account
// identifiers); two colluding entities can join their knowledge only
// where their handle sets intersect, or where either saw the subject's
// ground identity directly.
type Entity struct {
	Name  string
	User  bool
	Knows Tuple
	Links []string
}

// SharedSecret models information that is non-sensitive at each holder
// individually but becomes sensitive when all holders pool it — the
// secret-sharing structure of PPM/Prio (§3.2.5), where any proper subset
// of aggregators sees uniformly random shares but the complete set can
// recombine client inputs.
type SharedSecret struct {
	Name    string
	Holders []string
	// Yields is the component the complete holder set reconstructs.
	Yields Component
}

// System is a complete decoupling analysis target: a named set of
// entities, at least one of which is the user.
type System struct {
	Name     string
	Section  string // paper section, e.g. "3.2.2"
	Entities []Entity
	// SharedSecrets lists threshold structures whose reconstruction
	// requires every named holder to collude.
	SharedSecrets []SharedSecret
	Notes         string
}

// Entity returns the named entity, or nil.
func (s *System) Entity(name string) *Entity {
	for i := range s.Entities {
		if s.Entities[i].Name == name {
			return &s.Entities[i]
		}
	}
	return nil
}

// User returns the first user entity, or nil if the model is malformed.
func (s *System) User() *Entity {
	for i := range s.Entities {
		if s.Entities[i].User {
			return &s.Entities[i]
		}
	}
	return nil
}

// Validate checks structural well-formedness: a user exists, names are
// unique and non-empty.
func (s *System) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: system has no name")
	}
	if s.User() == nil {
		return fmt.Errorf("core: system %q has no user entity", s.Name)
	}
	seen := map[string]bool{}
	for _, e := range s.Entities {
		if e.Name == "" {
			return fmt.Errorf("core: system %q has an unnamed entity", s.Name)
		}
		if seen[e.Name] {
			return fmt.Errorf("core: system %q has duplicate entity %q", s.Name, e.Name)
		}
		seen[e.Name] = true
	}
	return nil
}
