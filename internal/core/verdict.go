package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Verdict is the result of a decoupling analysis of a single system.
type Verdict struct {
	System string
	// Decoupled is the paper's headline predicate: true iff only the
	// user holds (▲, ●).
	Decoupled bool
	// CoupledEntities lists non-user entities that individually hold
	// both a sensitive identity and sensitive data — each is a single
	// point of surveillance (the VPN failure mode, §3.3).
	CoupledEntities []string
	// MinCoalition is the smallest set of non-user entities whose
	// merged, linkable knowledge re-couples identity with data; nil if
	// no coalition of any size can (information-theoretic decoupling).
	MinCoalition []string
	// Degree is the paper's §4.2 "degree of decoupling": the size of
	// MinCoalition. Degree 1 means a single entity violates privacy
	// (not decoupled); higher degrees mean that many organizations must
	// actively collude. 0 means no coalition suffices.
	Degree int
}

// String summarizes the verdict in one line.
func (v Verdict) String() string {
	status := "DECOUPLED"
	if !v.Decoupled {
		status = "NOT DECOUPLED"
	}
	coalition := "none"
	if len(v.MinCoalition) > 0 {
		coalition = strings.Join(v.MinCoalition, "+")
	}
	return fmt.Sprintf("%s: %s (degree %d, min coalition %s)", v.System, status, v.Degree, coalition)
}

// Analyze applies the Decoupling Principle to a system model. It
// implements the §2.4 rule plus the §4.1 collusion analysis: for every
// subset of non-user entities it checks whether the coalition's merged
// knowledge is coupled AND internally linkable, and reports the smallest
// such coalition.
func Analyze(s *System) (Verdict, error) {
	if err := s.Validate(); err != nil {
		return Verdict{}, err
	}
	v := Verdict{System: s.Name, Decoupled: true}

	var others []Entity
	for _, e := range s.Entities {
		if e.User {
			continue
		}
		others = append(others, e)
		if e.Knows.Coupled() {
			v.Decoupled = false
			v.CoupledEntities = append(v.CoupledEntities, e.Name)
		}
	}
	sort.Strings(v.CoupledEntities)

	// Exhaustive coalition search. Systems in this module have ≤ 8
	// non-user entities, so 2^n enumeration is trivially cheap. We scan
	// subsets in order of increasing popcount to find a minimum.
	n := len(others)
	if n > 20 {
		return Verdict{}, fmt.Errorf("core: coalition search over %d entities is not supported", n)
	}
	best := 0
	var bestSet []string
	for size := 1; size <= n && best == 0; size++ {
		for mask := 1; mask < 1<<n; mask++ {
			if bits.OnesCount(uint(mask)) != size {
				continue
			}
			var members []Entity
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					members = append(members, others[i])
				}
			}
			if coalitionCoupled(s, members) {
				best = size
				bestSet = names(members)
				break
			}
		}
	}
	v.Degree = best
	v.MinCoalition = bestSet
	return v, nil
}

func names(es []Entity) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// coalitionCoupled reports whether a set of colluding entities can
// re-couple a sensitive identity with sensitive data. Pooling knowledge
// is necessary but not sufficient: the members holding the identity and
// the members holding the data must be connected through shared linkage
// handles (directly or transitively through other coalition members),
// otherwise the coalition has two piles of facts and no join key — the
// precise sense in which a mix cascade resists partial collusion.
//
// Entities with no declared links are treated as linkable to every
// coalition member (conservative: absence of handle modeling must not
// produce false privacy claims).
//
// Shared-secret structures (System.SharedSecrets) are reconstructed when
// the coalition contains every holder: the yielded component joins the
// merged tuple and the holders become mutually linked, since recombining
// shares is itself a join.
func coalitionCoupled(s *System, members []Entity) bool {
	merged := Tuple{}
	present := map[string]bool{}
	for _, e := range members {
		merged = merged.Merge(e.Knows)
		present[e.Name] = true
	}
	var reconstructed []SharedSecret
	for _, sec := range s.SharedSecrets {
		all := len(sec.Holders) > 0
		for _, h := range sec.Holders {
			if !present[h] {
				all = false
				break
			}
		}
		if all {
			merged = merged.Merge(Tuple{sec.Yields})
			reconstructed = append(reconstructed, sec)
		}
	}
	if !merged.Coupled() {
		return false
	}
	// Union-find over coalition members via shared handles.
	parent := make([]int, len(members))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	handleOwners := map[string][]int{}
	for i, e := range members {
		if len(e.Links) == 0 {
			// Conservatively linkable to all members.
			for j := range members {
				union(i, j)
			}
			continue
		}
		for _, h := range e.Links {
			handleOwners[h] = append(handleOwners[h], i)
		}
	}
	for _, owners := range handleOwners {
		for i := 1; i < len(owners); i++ {
			union(owners[0], owners[i])
		}
	}

	// Effective per-member knowledge: own tuple plus any secrets whose
	// complete holder set is in the coalition and includes this member.
	// Recombination also links the holders to one another.
	effective := make([]Tuple, len(members))
	for i, e := range members {
		effective[i] = e.Knows
	}
	for _, sec := range reconstructed {
		var idxs []int
		for i, e := range members {
			for _, h := range sec.Holders {
				if e.Name == h {
					idxs = append(idxs, i)
					break
				}
			}
		}
		for _, i := range idxs {
			effective[i] = effective[i].Merge(Tuple{sec.Yields})
			union(idxs[0], i)
		}
	}

	// Is some identity holder connected to some data holder?
	for i := range members {
		if !effective[i].knowsSensitive(Identity) {
			continue
		}
		for j := range members {
			if !effective[j].knowsSensitive(Data) {
				continue
			}
			if find(i) == find(j) {
				return true
			}
		}
	}
	return false
}

// CompareTuples diffs an expected analysis (the paper's table) against a
// measured one (derived from a running implementation), returning a list
// of human-readable mismatches; empty means exact agreement.
func CompareTuples(expected, measured *System) []string {
	var diffs []string
	for _, e := range expected.Entities {
		m := measured.Entity(e.Name)
		if m == nil {
			diffs = append(diffs, fmt.Sprintf("entity %q missing from measured system", e.Name))
			continue
		}
		if !e.Knows.Equal(m.Knows) {
			diffs = append(diffs, fmt.Sprintf("entity %q: expected %s, measured %s",
				e.Name, e.Knows.Symbol(), m.Knows.Symbol()))
		}
	}
	for _, m := range measured.Entities {
		if expected.Entity(m.Name) == nil {
			diffs = append(diffs, fmt.Sprintf("entity %q present in measured system but absent from paper table", m.Name))
		}
	}
	return diffs
}
