// Package bench defines the benchmark document cmd/loadgen emits
// (BENCH_transport.json), the live /statusz snapshot wrapped around
// it, and the tolerance-threshold comparison cmd/benchdiff gates CI
// on. Keeping the types and the comparison in one library package
// means the producer (loadgen), the gate (benchdiff), and the tests
// can never drift on field names — and the ROADMAP's hot-path
// optimization work gets its "did it actually get faster" check
// against a committed baseline instead of a one-off snapshot.
package bench

import (
	"encoding/json"
	"fmt"
)

// Latency is a wall-clock quantile block in milliseconds.
type Latency struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Leg is one benchmark leg's results (the ODoH HTTP leg or the mixnet
// TCP leg).
type Leg struct {
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"requests_per_sec"`
	Latency     Latency `json:"latency"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	Delivered   uint64  `json:"delivered,omitempty"`
	Lost        uint64  `json:"lost,omitempty"`
}

// LedgerSummary is the knowledge-audit block: present when the run
// admitted observations and derived a verdict.
type LedgerSummary struct {
	Observations  int  `json:"observations"`
	TupleDiffs    int  `json:"tuple_diffs"`
	Decoupled     bool `json:"verdict_decoupled"`
	AuditObserver int  `json:"observers"`
}

// Doc is the benchmark document (BENCH_transport.json).
type Doc struct {
	Clients int            `json:"clients"`
	Proxies int            `json:"proxies"`
	Relays  int            `json:"relays"`
	Workers int            `json:"workers"`
	Seed    int64          `json:"seed"`
	Full    bool           `json:"full"`
	ODoH    Leg            `json:"odoh"`
	Mixnet  Leg            `json:"mixnet"`
	Ledger  *LedgerSummary `json:"ledger,omitempty"`
	Trace   *TraceSummary  `json:"trace,omitempty"`
	Faults  *FaultSummary  `json:"faults,omitempty"`
}

// FaultSummary is the chaos block: present when the run injected a
// fault plan (loadgen -faults). It records what the fault layer did
// (injected drops, sheds, retries, reconnects) and whether the run held
// its fail-closed SLO: errors bounded, no silent drops, the ledger
// verdict still DECOUPLED.
type FaultSummary struct {
	// Spec is the canonical fault-plan spec the run injected.
	Spec string `json:"spec"`
	// Injected counts frames dropped by the injected plan (distinct
	// from organic wire loss).
	Injected uint64 `json:"injected_drops"`
	// Shed counts frames refused under overload (typed, never silent).
	Shed uint64 `json:"shed"`
	// Retries counts client-level retried attempts.
	Retries uint64 `json:"retries"`
	// Reconnects counts writer streams re-established after a reset or
	// a destination restart.
	Reconnects uint64 `json:"reconnects"`
	// ErrorRate is client-visible errors / requests across both legs.
	ErrorRate float64 `json:"error_rate"`
	// DeliveredFraction is delivered / sent on the lossy leg.
	DeliveredFraction float64 `json:"delivered_fraction"`
	// SLOOK reports whether the run met its fail-closed SLO.
	SLOOK bool `json:"slo_ok"`
}

// TraceSummary is the wire-trace block: present when the run traced a
// sample of clients end to end. Compare deliberately ignores it —
// tracing is diagnostic context riding along with the latency numbers
// (exemplar trace ids tie the slow quantiles to inspectable requests),
// not a gated metric — so baselines recorded without tracing stay
// comparable.
type TraceSummary struct {
	Mode      string `json:"mode"`
	Sampled   int    `json:"sampled_clients"`
	Spans     int    `json:"spans"`
	Rotations int    `json:"rotations"`
	// AuditDecoupled is the trace-plane audit verdict (nil when the
	// run had no ledger to audit against).
	AuditDecoupled *bool `json:"audit_decoupled,omitempty"`
	// Dominant histograms which leg dominated each stitched request.
	Dominant map[string]int `json:"dominant_legs,omitempty"`
	// Exemplars are the slowest stitched requests, descending, so the
	// latency summary's tail links to concrete traces.
	Exemplars []TraceExemplar `json:"exemplars,omitempty"`
}

// TraceExemplar ties one slow request's latency to its trace id.
type TraceExemplar struct {
	Trace      string  `json:"trace"`
	TotalMs    float64 `json:"total_ms"`
	Dominant   string  `json:"dominant"`
	DominantMs float64 `json:"dominant_ms"`
}

// Status is the live /statusz snapshot: the benchmark document as far
// as the run has gotten, plus process health. benchdiff accepts it
// anywhere a Doc is accepted.
type Status struct {
	Phase      string  `json:"phase"` // "odoh", "mixnet", "done"
	ElapsedSec float64 `json:"elapsed_s"`
	Goroutines int     `json:"goroutines"`
	HeapBytes  uint64  `json:"heap_alloc_bytes"`
	Bench      Doc     `json:"bench"`
}

// Decode parses either a bare Doc or a Status wrapper, returning the
// embedded Doc. Strictness is deliberate: an empty document (no
// requests on any leg) is an error, because comparing against it would
// pass every gate vacuously.
func Decode(blob []byte) (Doc, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(blob, &probe); err != nil {
		return Doc{}, fmt.Errorf("bench: not a JSON object: %w", err)
	}
	var doc Doc
	if raw, ok := probe["bench"]; ok {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return Doc{}, fmt.Errorf("bench: bad statusz bench block: %w", err)
		}
	} else if err := json.Unmarshal(blob, &doc); err != nil {
		return Doc{}, fmt.Errorf("bench: bad benchmark document: %w", err)
	}
	if doc.ODoH.Requests == 0 && doc.Mixnet.Requests == 0 {
		return Doc{}, fmt.Errorf("bench: document has no requests on any leg")
	}
	return doc, nil
}

// Thresholds are the per-metric tolerances Compare applies. The zero
// value tolerates nothing; DefaultThresholds gives the CI-grade
// defaults (generous, because loadgen runs on shared runners).
type Thresholds struct {
	// ThroughputDrop is the maximum tolerated fractional drop in
	// requests/sec: 0.5 means the candidate may be at worst half the
	// baseline's throughput.
	ThroughputDrop float64
	// LatencyGrow is the maximum tolerated latency multiplier: 3 means
	// a candidate quantile may be at worst 3x the baseline's.
	LatencyGrow float64
	// AllocGrow is the maximum tolerated allocs/op and bytes/op
	// multiplier.
	AllocGrow float64
	// MaxErrors is the absolute error budget per leg.
	MaxErrors uint64
}

// DefaultThresholds returns the generous CI defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{ThroughputDrop: 0.5, LatencyGrow: 3, AllocGrow: 1.5}
}

// Regression is one metric that moved past its threshold.
type Regression struct {
	Metric   string // e.g. "odoh.requests_per_sec"
	Baseline float64
	Got      float64
	Limit    float64 // the boundary the candidate crossed
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: baseline %.4g, got %.4g (limit %.4g)", r.Metric, r.Baseline, r.Got, r.Limit)
}

// Compare grades candidate against baseline under th and returns every
// regression found (empty = gate passes). Only regressions count:
// faster, leaner, or lower-latency candidates pass. Metrics the
// baseline does not carry (zero values) are skipped — a baseline
// recorded before a metric existed must not vacuously fail the gate.
func Compare(baseline, candidate Doc, th Thresholds) []Regression {
	var out []Regression
	legs := []struct {
		name       string
		base, cand Leg
	}{
		{"odoh", baseline.ODoH, candidate.ODoH},
		{"mixnet", baseline.Mixnet, candidate.Mixnet},
	}
	for _, l := range legs {
		if l.base.Requests == 0 && l.cand.Requests == 0 {
			continue // leg absent on both sides
		}
		if l.cand.Errors > th.MaxErrors {
			out = append(out, Regression{l.name + ".errors", float64(l.base.Errors), float64(l.cand.Errors), float64(th.MaxErrors)})
		}
		if l.base.Throughput > 0 {
			limit := l.base.Throughput * (1 - th.ThroughputDrop)
			if l.cand.Throughput < limit {
				out = append(out, Regression{l.name + ".requests_per_sec", l.base.Throughput, l.cand.Throughput, limit})
			}
		}
		quantiles := []struct {
			name       string
			base, cand float64
		}{
			{"p50_ms", l.base.Latency.P50, l.cand.Latency.P50},
			{"p90_ms", l.base.Latency.P90, l.cand.Latency.P90},
			{"p99_ms", l.base.Latency.P99, l.cand.Latency.P99},
		}
		for _, q := range quantiles {
			if q.base <= 0 {
				continue
			}
			limit := q.base * th.LatencyGrow
			if q.cand > limit {
				out = append(out, Regression{l.name + ".latency." + q.name, q.base, q.cand, limit})
			}
		}
		perOp := []struct {
			name       string
			base, cand uint64
		}{
			{"allocs_per_op", l.base.AllocsPerOp, l.cand.AllocsPerOp},
			{"bytes_per_op", l.base.BytesPerOp, l.cand.BytesPerOp},
		}
		for _, p := range perOp {
			if p.base == 0 {
				continue
			}
			limit := float64(p.base) * th.AllocGrow
			if float64(p.cand) > limit {
				out = append(out, Regression{l.name + "." + p.name, float64(p.base), float64(p.cand), limit})
			}
		}
	}
	// The audit verdict is absolute, not relative: a candidate that
	// re-coupled or diverged from the paper's tuples fails regardless
	// of thresholds.
	if lg := candidate.Ledger; lg != nil {
		if lg.TupleDiffs > 0 {
			out = append(out, Regression{"ledger.tuple_diffs", 0, float64(lg.TupleDiffs), 0})
		}
		if !lg.Decoupled {
			out = append(out, Regression{"ledger.verdict_decoupled", 1, 0, 1})
		}
	}
	// The fault SLO is likewise absolute: a chaos run that blew its
	// fail-closed SLO fails even against a baseline recorded before the
	// fault block existed. Relative checks (delivered fraction) only
	// apply when the baseline carries a fault block of its own — a
	// pre-chaos baseline must not vacuously fail the gate.
	if f := candidate.Faults; f != nil {
		if !f.SLOOK {
			out = append(out, Regression{"faults.slo_ok", 1, 0, 1})
		}
		if base := baseline.Faults; base != nil && base.DeliveredFraction > 0 {
			limit := base.DeliveredFraction * (1 - th.ThroughputDrop)
			if f.DeliveredFraction < limit {
				out = append(out, Regression{"faults.delivered_fraction", base.DeliveredFraction, f.DeliveredFraction, limit})
			}
		}
	}
	return out
}
