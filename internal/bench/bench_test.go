package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func healthyDoc() Doc {
	return Doc{
		Clients: 10000, Proxies: 4, Relays: 3, Workers: 256, Seed: 1,
		ODoH: Leg{
			Requests: 41000, Seconds: 20, Throughput: 2000,
			Latency:     Latency{P50: 90, P90: 140, P99: 500, Max: 1200},
			AllocsPerOp: 360, BytesPerOp: 34000,
		},
		Mixnet: Leg{
			Requests: 1000, Seconds: 5, Throughput: 200,
			Latency:     Latency{P50: 30, P90: 60, P99: 120, Max: 300},
			AllocsPerOp: 740, BytesPerOp: 64000, Delivered: 4000,
		},
		Ledger: &LedgerSummary{Observations: 246000, Decoupled: true, AuditObserver: 3},
	}
}

func TestCompareCleanBaseline(t *testing.T) {
	t.Parallel()
	doc := healthyDoc()
	if regs := Compare(doc, doc, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("doc vs itself regressed: %v", regs)
	}
	// Improvements never regress.
	better := doc
	better.ODoH.Throughput *= 4
	better.ODoH.Latency.P99 /= 10
	better.ODoH.AllocsPerOp = 1
	if regs := Compare(doc, better, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

// TestCompareInjectedRegressions flips each gated metric past its
// threshold and requires exactly that metric to be reported.
func TestCompareInjectedRegressions(t *testing.T) {
	t.Parallel()
	th := DefaultThresholds()
	cases := map[string]func(*Doc){
		"odoh.requests_per_sec":    func(d *Doc) { d.ODoH.Throughput = 900 },      // < 2000*0.5
		"odoh.latency.p50_ms":      func(d *Doc) { d.ODoH.Latency.P50 = 280 },     // > 90*3
		"odoh.latency.p99_ms":      func(d *Doc) { d.ODoH.Latency.P99 = 1600 },    // > 500*3
		"mixnet.latency.p90_ms":    func(d *Doc) { d.Mixnet.Latency.P90 = 190 },   // > 60*3
		"odoh.allocs_per_op":       func(d *Doc) { d.ODoH.AllocsPerOp = 600 },     // > 360*1.5
		"mixnet.bytes_per_op":      func(d *Doc) { d.Mixnet.BytesPerOp = 100000 }, // > 64000*1.5
		"odoh.errors":              func(d *Doc) { d.ODoH.Errors = 1 },
		"ledger.tuple_diffs":       func(d *Doc) { d.Ledger.TupleDiffs = 2 },
		"ledger.verdict_decoupled": func(d *Doc) { d.Ledger.Decoupled = false },
	}
	for want, inject := range cases {
		doc := healthyDoc()
		cand := healthyDoc()
		lg := *doc.Ledger
		cand.Ledger = &lg
		inject(&cand)
		regs := Compare(doc, cand, th)
		if len(regs) != 1 {
			t.Errorf("%s: got %d regressions, want 1: %v", want, len(regs), regs)
			continue
		}
		if regs[0].Metric != want {
			t.Errorf("regression metric = %q, want %q", regs[0].Metric, want)
		}
		if s := regs[0].String(); !strings.Contains(s, want) {
			t.Errorf("rendering %q lacks metric name", s)
		}
	}
}

// TestCompareSkipsAbsentBaselines: metrics a baseline never recorded
// (the seed BENCH_transport.json carried all-zero mixnet latency) must
// not gate the candidate.
func TestCompareSkipsAbsentBaselines(t *testing.T) {
	t.Parallel()
	base := healthyDoc()
	base.Mixnet.Latency = Latency{} // pre-instrumentation baseline
	base.ODoH.Throughput = 0
	cand := healthyDoc()
	cand.Mixnet.Latency = Latency{P50: 9999, P90: 9999, P99: 9999, Max: 9999}
	cand.ODoH.Throughput = 0.001
	if regs := Compare(base, cand, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("zero-valued baseline metrics gated the candidate: %v", regs)
	}
}

// TestCompareFaultBlock covers the chaos SLO gate: the candidate's
// slo_ok is absolute, while relative fault checks only engage when the
// baseline recorded a fault block of its own — a baseline committed
// before chaos runs existed (Faults == nil) must not gate, and must
// not be gated, vacuously.
func TestCompareFaultBlock(t *testing.T) {
	t.Parallel()
	th := DefaultThresholds()
	chaos := func(sloOK bool, delivered float64) *FaultSummary {
		return &FaultSummary{
			Spec: "loss:*>mix1:0.2@0-", Injected: 120, Shed: 40, Retries: 90,
			Reconnects: 8, ErrorRate: 0.01, DeliveredFraction: delivered, SLOOK: sloOK,
		}
	}

	// Zero-baseline skip: pre-chaos baseline, healthy chaos candidate.
	base := healthyDoc()
	cand := healthyDoc()
	cand.Faults = chaos(true, 0.95)
	if regs := Compare(base, cand, th); len(regs) != 0 {
		t.Fatalf("missing baseline fault block gated a healthy chaos run: %v", regs)
	}
	// ...and the skip does not extend to the absolute SLO check.
	cand.Faults = chaos(false, 0.95)
	regs := Compare(base, cand, th)
	if len(regs) != 1 || regs[0].Metric != "faults.slo_ok" {
		t.Fatalf("blown SLO against a pre-chaos baseline: got %v, want faults.slo_ok", regs)
	}

	// A fault-aware baseline gates delivered fraction relatively.
	base.Faults = chaos(true, 0.95)
	cand.Faults = chaos(true, 0.95*(1-th.ThroughputDrop)/2)
	regs = Compare(base, cand, th)
	if len(regs) != 1 || regs[0].Metric != "faults.delivered_fraction" {
		t.Fatalf("collapsed delivered fraction: got %v, want faults.delivered_fraction", regs)
	}
	cand.Faults = chaos(true, 0.94)
	if regs := Compare(base, cand, th); len(regs) != 0 {
		t.Fatalf("in-tolerance delivered fraction regressed: %v", regs)
	}

	// A baseline WITH a fault block against a candidate without one is
	// fine too: the candidate simply did not run chaos.
	cand.Faults = nil
	if regs := Compare(base, cand, th); len(regs) != 0 {
		t.Fatalf("chaos-free candidate gated by fault-aware baseline: %v", regs)
	}
}

func TestCompareZeroThresholdsAreStrict(t *testing.T) {
	t.Parallel()
	base := healthyDoc()
	cand := healthyDoc()
	cand.ODoH.Throughput *= 0.99 // any drop fails at zero tolerance
	if regs := Compare(base, cand, Thresholds{}); len(regs) == 0 {
		t.Fatal("zero thresholds tolerated a throughput drop")
	}
}

func TestDecode(t *testing.T) {
	t.Parallel()
	doc := healthyDoc()
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode(doc): %v", err)
	}
	if got.ODoH.Requests != doc.ODoH.Requests {
		t.Fatalf("round trip lost requests: %+v", got)
	}

	// A /statusz wrapper decodes to its embedded doc.
	wrapped, err := json.Marshal(Status{Phase: "mixnet", Bench: doc})
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(wrapped)
	if err != nil {
		t.Fatalf("Decode(statusz): %v", err)
	}
	if got.Mixnet.Requests != doc.Mixnet.Requests {
		t.Fatalf("statusz round trip lost requests: %+v", got)
	}

	for name, blob := range map[string]string{
		"not json":  "nope",
		"empty doc": "{}",
		"no legs":   `{"clients":5,"odoh":{"requests":0},"mixnet":{"requests":0}}`,
	} {
		if _, err := Decode([]byte(blob)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}
