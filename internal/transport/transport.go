// Package transport defines the message-transport contract the
// protocol stacks (mixnet, onion, and the simnet-hosted helpers) are
// written against: named endpoints exchanging datagrams, node-local
// timers, a clock, and sanctioned randomness.
//
// Two implementations exist:
//
//   - internal/simnet.Network — the deterministic in-process simulator
//     (virtual clock, seeded RNG, single event loop). Same seed, same
//     schedule, bit-for-bit.
//   - internal/nettransport.Net — real loopback sockets (UDP, TCP, or
//     net/http), worker pools, and wall clocks. Concurrent and
//     non-deterministic, as production infrastructure is.
//
// Protocol code takes the interface, so the same mix, relay, and
// receiver handlers run unchanged over virtual events and over real
// sockets; the differential transport-equivalence tests in
// internal/experiments assert that the knowledge tuples and audit
// verdicts they produce are identical either way. That is the point:
// the paper's decoupling claims are statements about what each entity
// observes, and observation capture must not depend on how bytes move.
package transport

import (
	"time"

	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
)

// Addr names a node on the network.
type Addr string

// Message is a datagram in flight.
type Message struct {
	Src, Dst Addr
	Payload  []byte
	// Trace is the wire-level trace context that rode with the
	// datagram: out-of-band of the payload (it never changes the bytes
	// the ledger hashes), carried by the frame codec's v2 trace
	// extension on the real transport and on the event record in the
	// simulator. Zero when the sender attached none.
	Trace wiretrace.Context
}

// Handler processes a delivered message on behalf of a node. The
// transport guarantees per-node serialization: a node's handler (and
// the timers it arms through the Transport it is handed) never runs
// concurrently with itself, which is what lets protocol state like a
// mix's batch queue stay lock-free. Handlers may call Send/After
// freely but must not block.
type Handler func(t Transport, msg Message)

// PacketRecord is one captured delivery, as seen by a passive global
// observer: metadata only, no payload bytes (encrypted payloads leak
// size and timing, which is precisely what traffic analysis exploits).
type PacketRecord struct {
	Time time.Duration
	Src  Addr
	Dst  Addr
	Size int
}

// Transport is the node-facing surface: everything a protocol handler
// may touch. It is deliberately small — sending, registration, timers,
// clock, and seeded randomness — so both the simulator and the real
// transport can honor the same per-node serialization contract.
//
// Now and After satisfy resilience.Clock, so retry/watchdog policies
// run unchanged on either implementation.
type Transport interface {
	// Send enqueues a datagram from src to dst. Delivery is
	// asynchronous; an error means the transport refused the send
	// (unregistered destination, crashed node, closed transport) —
	// silent loss, where the implementation models it, is not an error.
	Send(src, dst Addr, payload []byte) error
	// Register attaches a handler to addr, creating the node.
	// Registering an existing address replaces its handler.
	Register(addr Addr, h Handler)
	// After schedules fn to run after delay. A timer armed from inside
	// a node's handler belongs to that node: it runs serialized with
	// the node's handler and dies with the node where the
	// implementation models crashes.
	After(delay time.Duration, fn func())
	// Now returns the transport's clock: virtual time on the
	// simulator, elapsed wall time on the real transport. Handlers and
	// ledgers must use this — never time.Now() — so runs on the
	// simulator stay deterministic.
	Now() time.Duration
	// Rand returns a pseudo-random int in [0, max), from the
	// transport's seeded source. It is the only sanctioned randomness
	// for protocol decisions that must be reproducible on the
	// simulator (shuffles, route picks, chaff schedules).
	Rand(max int) int
}

// ContextSender is the optional wire-tracing surface: a Transport
// that can attach a trace context to a datagram. Both implementations
// provide it; it is split from Transport so the base contract (and
// every existing fake) stays unchanged.
type ContextSender interface {
	// SendTraced is Send with a trace context riding out-of-band of the
	// payload. The delivered Message carries it in its Trace field.
	SendTraced(src, dst Addr, payload []byte, ctx wiretrace.Context) error
}

// SendWithContext sends via SendTraced when the transport supports it
// and a context is present, falling back to plain Send. Protocol code
// uses this so wire tracing degrades to a no-op on transports (or
// test fakes) that don't implement the extension.
func SendWithContext(t Transport, src, dst Addr, payload []byte, ctx wiretrace.Context) error {
	if cs, ok := t.(ContextSender); ok && !ctx.IsZero() {
		return cs.SendTraced(src, dst, payload, ctx)
	}
	return t.Send(src, dst, payload)
}

// Runner is the experiment-facing surface: a Transport plus the
// lifecycle and observability hooks experiments drive. Network (the
// simulator) and nettransport.Net both implement it.
type Runner interface {
	Transport
	// Instrument attaches a telemetry sink. Call before traffic; a nil
	// sink is a no-op.
	Instrument(tel *telemetry.Telemetry)
	// Run processes traffic until the transport quiesces (no queued
	// events, no in-flight datagrams or timers), returning the number
	// of messages delivered during this call.
	Run() uint64
	// Capture returns a copy of the global passive observer's packet
	// records.
	Capture() []PacketRecord
	// Delivered returns the all-time count of delivered messages.
	Delivered() uint64
	// Lost returns the all-time count of messages the transport ate
	// (link loss, injected faults, or real-socket failures).
	Lost() uint64
	// Close shuts the transport down. After Close, Send fails closed
	// with an error; in-flight work is dropped, never rerouted. The
	// simulator's Close is a no-op (it has no sockets to release).
	Close() error
}
