package transport

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wallClockAllowlist names the only non-test files permitted to touch
// the wall clock directly. Everything else — protocol handlers, mixes,
// proxies, the ledger — must route timing through a Transport's
// Now/After, so the same code is deterministic under the simulator and
// honest under real sockets. A new entry here needs the same kind of
// justification these have.
var wallClockAllowlist = map[string]string{
	"internal/dns/udp.go":            "kernel socket read deadline; the OS clock is the only one the kernel honors",
	"internal/experiments/runner.go": "wall-elapsed reporting and queue-wait telemetry for the human-facing runner",
	"internal/mpr/certs.go":          "X.509 NotBefore/NotAfter; certificate validity is wall time by definition",
	"internal/nettransport/":         "the real transport: its whole job is binding the Transport clock to the wall",
	"cmd/loadgen/":                   "wall-clock benchmark harness measuring the real transport",
}

// TestNoWallClockInProtocolCode is the regression guard for the clock
// audit: no shared protocol path may call time.Now() or time.Sleep.
// When one of those leaks into handler code, virtual-time runs stop
// being deterministic (breaking the explorer's replay fixpoint) and
// equivalence between transports quietly erodes. The scan is textual
// but comment-stripped, so documentation may mention the forbidden
// calls freely.
func TestNoWallClockInProtocolCode(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, top := range []string{"internal", "cmd"} {
		err := filepath.Walk(filepath.Join(root, top), func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			for allowed := range wallClockAllowlist {
				if rel == allowed || (strings.HasSuffix(allowed, "/") && strings.HasPrefix(rel, allowed)) {
					return nil
				}
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for i, line := range strings.Split(string(src), "\n") {
				code := line
				if idx := strings.Index(code, "//"); idx >= 0 {
					code = code[:idx]
				}
				if strings.Contains(code, "time.Now()") || strings.Contains(code, "time.Sleep(") {
					t.Errorf("%s:%d: wall clock call in shared protocol code: %s\n"+
						"route timing through the Transport clock (Now/After), or add an allowlist entry with a justification",
						rel, i+1, strings.TrimSpace(line))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", top, err)
		}
	}
}

// TestAllowlistEntriesExist keeps the allowlist honest: a stale entry
// means the justification no longer covers anything.
func TestAllowlistEntriesExist(t *testing.T) {
	root := filepath.Join("..", "..")
	for entry := range wallClockAllowlist {
		p := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(entry, "/")))
		if _, err := os.Stat(p); err != nil {
			t.Errorf("allowlist entry %q does not exist: %v", entry, err)
		}
	}
}
