package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wallClockAllowlist names the only non-test files permitted to touch
// the wall clock directly. Everything else — protocol handlers, mixes,
// proxies, the ledger — must route timing through a Transport's
// Now/After, so the same code is deterministic under the simulator and
// honest under real sockets. A new entry here needs the same kind of
// justification these have.
var wallClockAllowlist = map[string]string{
	"internal/dns/udp.go":            "kernel socket read deadline; the OS clock is the only one the kernel honors",
	"internal/experiments/runner.go": "wall-elapsed reporting and queue-wait telemetry for the human-facing runner",
	"internal/mpr/certs.go":          "X.509 NotBefore/NotAfter; certificate validity is wall time by definition",
	"internal/nettransport/":         "the real transport: its whole job is binding the Transport clock to the wall",
	"internal/telemetry/sampler.go":  "wall-clock run-health sampling: observability measures the real world, and virtual timestamps on a live feed would be a lie",
	"cmd/loadgen/":                   "wall-clock benchmark harness measuring the real transport",
}

// protocolPackages are the packages whose determinism the explorer's
// replay fixpoint depends on; no allowlist entry may ever cover them.
var protocolPackages = []string{
	"internal/simnet/",
	"internal/mixnet/",
	"internal/odoh/",
	"internal/core/",
	"internal/ledger/",
	"internal/resilience/",
	"internal/explore/",
}

// scanWallClock walks the internal/ and cmd/ trees under root and
// returns one "path:line: code" string per wall-clock call found
// outside the allowlist. The scan is textual but comment-stripped, so
// documentation may mention the forbidden calls freely.
func scanWallClock(root string, allowlist map[string]string) ([]string, error) {
	var violations []string
	for _, top := range []string{"internal", "cmd"} {
		dir := filepath.Join(root, top)
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			continue
		}
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			for allowed := range allowlist {
				if rel == allowed || (strings.HasSuffix(allowed, "/") && strings.HasPrefix(rel, allowed)) {
					return nil
				}
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for i, line := range strings.Split(string(src), "\n") {
				code := line
				if idx := strings.Index(code, "//"); idx >= 0 {
					code = code[:idx]
				}
				if strings.Contains(code, "time.Now()") || strings.Contains(code, "time.Sleep(") {
					violations = append(violations, fmt.Sprintf("%s:%d: %s", rel, i+1, strings.TrimSpace(line)))
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return violations, nil
}

// TestNoWallClockInProtocolCode is the regression guard for the clock
// audit: no shared protocol path may call time.Now() or time.Sleep.
// When one of those leaks into handler code, virtual-time runs stop
// being deterministic (breaking the explorer's replay fixpoint) and
// equivalence between transports quietly erodes.
func TestNoWallClockInProtocolCode(t *testing.T) {
	violations, err := scanWallClock(filepath.Join("..", ".."), wallClockAllowlist)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("wall clock call in shared protocol code: %s\n"+
			"route timing through the Transport clock (Now/After), or add an allowlist entry with a justification", v)
	}
}

// TestScanCatchesViolations proves the guard has teeth: a synthetic
// tree with a wall-clock call planted in a simnet-shaped package must
// be flagged, with or without an unrelated allowlist entry, and an
// entry covering the file must silence exactly it.
func TestScanCatchesViolations(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "simnet")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package simnet

import "time"

// time.Now() in a comment must not trip the scan.
func now() time.Time { return time.Now() }

func nap() { time.Sleep(time.Millisecond) }
`
	if err := os.WriteFile(filepath.Join(dir, "sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file with the same calls must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "sim_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	violations, err := scanWallClock(root, map[string]string{"internal/other/": "unrelated"})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 2 {
		t.Fatalf("planted 2 wall-clock calls, scan found %d: %v", len(violations), violations)
	}
	for _, v := range violations {
		if !strings.HasPrefix(v, "internal/simnet/sim.go:") {
			t.Errorf("violation names wrong file: %s", v)
		}
	}

	silenced, err := scanWallClock(root, map[string]string{"internal/simnet/sim.go": "test"})
	if err != nil {
		t.Fatal(err)
	}
	if len(silenced) != 0 {
		t.Fatalf("allowlisted file still flagged: %v", silenced)
	}
}

// TestAllowlistNeverCoversProtocolPackages pins the boundary the
// sampler's new entry must not blur: observability may read the wall
// clock, the deterministic protocol and simulator packages may not,
// and no future allowlist entry may quietly change that.
func TestAllowlistNeverCoversProtocolPackages(t *testing.T) {
	for entry := range wallClockAllowlist {
		for _, pkg := range protocolPackages {
			if strings.HasPrefix(entry, pkg) || strings.HasPrefix(pkg, entry) {
				t.Errorf("allowlist entry %q covers protocol package %q; these must stay on the virtual clock", entry, pkg)
			}
		}
	}
}

// TestAllowlistEntriesExist keeps the allowlist honest: a stale entry
// means the justification no longer covers anything.
func TestAllowlistEntriesExist(t *testing.T) {
	root := filepath.Join("..", "..")
	for entry := range wallClockAllowlist {
		p := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(entry, "/")))
		if _, err := os.Stat(p); err != nil {
			t.Errorf("allowlist entry %q does not exist: %v", entry, err)
		}
	}
}
