package provenance

import "decoupling/internal/core"

// ExplainComponent returns the rendered evidence lines behind one
// measured tuple component of one entity — the provenance chain a
// static-conformance violation attaches so the report answers not just
// "the schema never licensed this" but "here is the run observing it".
// Lines use the same canonical ordering and formatting as the audit
// report, so they are byte-stable across runs of the same seed and any
// -parallel setting. Nil when the entity or component has no recorded
// evidence (e.g. a modeled user tuple).
func (a *Audit) ExplainComponent(entity string, kind core.Kind, label string) []string {
	for _, e := range a.Entities {
		if e.Name != entity {
			continue
		}
		for _, c := range e.Components {
			if c.Kind != kind.String() || c.Label != label {
				continue
			}
			var out []string
			for _, id := range c.Evidence {
				out = append(out, a.evidenceLine(id))
			}
			return out
		}
	}
	return nil
}
