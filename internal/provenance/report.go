package provenance

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Display caps for the human-readable report. The JSONL export is
// uncapped; the report elides long lists but always says how many
// entries it dropped — no silent truncation.
const (
	maxEvidenceLines = 3
	maxHandleLines   = 4
	maxSubjectChains = 5
)

// WriteReport renders the audit as a human-readable text report
// answering, for every entity, "why does it know each component?" and,
// for every subject, "how does the coalition link them?". Output is
// deterministic byte for byte for a given audit.
func WriteReport(w io.Writer, a *Audit) error {
	bw := &errWriter{w: w}

	title := a.System
	if a.ID != "" {
		title = a.ID + ": " + title
	}
	bw.printf("Audit: %s\n", title)
	bw.printf("Verdict: %s\n", a.Verdict.String())
	bw.printf("Coalition analyzed: %s\n", strings.Join(a.Coalition, " + "))
	bw.printf("Observations: %d total, %d distinct handles\n", a.TotalObs, a.HandleCount)

	for _, e := range a.Entities {
		bw.printf("\nEntity: %s — knows %s\n", e.Name, e.Tuple)
		if e.User {
			bw.printf("  (user: tuple modeled, not measured — the user trivially knows themself)\n")
			continue
		}
		for _, c := range e.Components {
			origin := "expected axis"
			if c.Extra {
				origin = "UNEXPECTED LEAK (axis absent from model)"
			}
			bw.printf("  %s %s %s — %s; %d/%d observations establish the level\n",
				c.Symbol, c.Kind, levelParen(c.Level), origin, len(c.Evidence), c.AxisTotal)
			for i, id := range c.Evidence {
				if i == maxEvidenceLines {
					bw.printf("      … and %d more\n", len(c.Evidence)-maxEvidenceLines)
					break
				}
				bw.printf("      %s\n", a.evidenceLine(id))
			}
			if len(c.Evidence) == 0 {
				bw.printf("      (no observations on this axis — level defaults to non-sensitive)\n")
			}
		}
		bw.printf("  links: %d handles\n", len(e.Links))
		for i, l := range e.Links {
			if i == maxHandleLines {
				bw.printf("      … and %d more\n", len(e.Links)-maxHandleLines)
				break
			}
			bw.printf("      %s carried by %s\n", l.Handle, idList(l.Obs))
		}
	}

	bw.printf("\nSubject linkage under full collusion:\n")
	for i, s := range a.Subjects {
		if i == maxSubjectChains {
			bw.printf("  … and %d more subjects\n", len(a.Subjects)-maxSubjectChains)
			break
		}
		if !s.Linked {
			bw.printf("  %s: not linkable — no handle chain joins identity to data\n", s.Subject)
			continue
		}
		bw.printf("  %s: LINKED via %s\n", s.Subject, chainString(s.Chain))
	}
	if len(a.Subjects) == 0 {
		bw.printf("  (no subjects with sensitive identity observations)\n")
	}

	bw.printf("\nCoalition handle partitions: %d\n", len(a.Partitions))
	for _, p := range a.Partitions {
		status := "uncoupled"
		if p.Coupled {
			status = "COUPLED"
		}
		bw.printf("  partition %d (%s): entities %s; %d handles; subjects %s\n",
			p.ID, status, strings.Join(p.Entities, "+"), len(p.Handles), orNone(p.Subjects))
	}
	return bw.err
}

// evidenceLine renders one observation reference: canonical id, kind,
// value, subject, handles, virtual time, and phase.
func (a *Audit) evidenceLine(id int) string {
	o := a.Evidence[id-1]
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %q", o.ID, o.Kind, o.Value)
	if o.Subject != "" {
		fmt.Fprintf(&b, " subject=%s", o.Subject)
	}
	if len(o.Handles) > 0 {
		fmt.Fprintf(&b, " handles=[%s]", strings.Join(o.Handles, " "))
	}
	fmt.Fprintf(&b, " t=%s", time.Duration(o.TimeNS))
	if o.Phase != "" {
		fmt.Fprintf(&b, " phase=%s", o.Phase)
	}
	return b.String()
}

func chainString(chain []ChainHop) string {
	var parts []string
	for i, hop := range chain {
		parts = append(parts, fmt.Sprintf("#%d", hop.Obs))
		if i < len(chain)-1 {
			parts = append(parts, fmt.Sprintf("-(%s)-", hop.Handle))
		}
	}
	return strings.Join(parts, " ")
}

func idList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("#%d", id)
	}
	return strings.Join(parts, " ")
}

func levelParen(level string) string { return "(" + level + ")" }

func orNone(ss []string) string {
	if len(ss) == 0 {
		return "none"
	}
	return strings.Join(ss, ",")
}

// errWriter folds per-line error checks into one terminal error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
