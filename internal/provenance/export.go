package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSONL streams the full audit as machine-readable JSON Lines,
// one self-describing object per line. Unlike the text report, nothing
// is capped. Line types, in order: "audit" (header), "obs" (every
// canonical observation), "component", "link" (per entity), "subject",
// "partition". Byte-deterministic for a given audit.
func WriteJSONL(w io.Writer, a *Audit) error {
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		return nil
	}

	header := struct {
		Type         string   `json:"type"`
		Experiment   string   `json:"experiment,omitempty"`
		System       string   `json:"system"`
		Decoupled    bool     `json:"decoupled"`
		Degree       int      `json:"degree"`
		MinCoalition []string `json:"min_coalition,omitempty"`
		Coalition    []string `json:"coalition"`
		TotalObs     int      `json:"total_obs"`
		Handles      int      `json:"handles"`
	}{
		Type:         "audit",
		Experiment:   a.ID,
		System:       a.System,
		Decoupled:    a.Verdict.Decoupled,
		Degree:       a.Verdict.Degree,
		MinCoalition: a.Verdict.MinCoalition,
		Coalition:    a.Coalition,
		TotalObs:     a.TotalObs,
		Handles:      a.HandleCount,
	}
	if err := emit(header); err != nil {
		return err
	}

	for _, o := range a.Evidence {
		if err := emit(struct {
			Type string `json:"type"`
			Evidence
		}{"obs", o}); err != nil {
			return err
		}
	}
	for _, e := range a.Entities {
		for _, c := range e.Components {
			if err := emit(struct {
				Type   string `json:"type"`
				Entity string `json:"entity"`
				Component
			}{"component", e.Name, c}); err != nil {
				return err
			}
		}
		for _, l := range e.Links {
			if err := emit(struct {
				Type   string `json:"type"`
				Entity string `json:"entity"`
				Link
			}{"link", e.Name, l}); err != nil {
				return err
			}
		}
	}
	for _, s := range a.Subjects {
		if err := emit(struct {
			Type string `json:"type"`
			SubjectLink
		}{"subject", s}); err != nil {
			return err
		}
	}
	for _, p := range a.Partitions {
		if err := emit(struct {
			Type string `json:"type"`
			Partition
		}{"partition", p}); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT renders the coalition linkage graph in Graphviz DOT: one
// cluster per handle partition, entity nodes as ellipses, handle
// aliases as boxes, edge labels counting the observations that carry
// the handle. Coupled partitions — realized privacy violations — are
// drawn filled.
func WriteDOT(w io.Writer, a *Audit) error {
	bw := &errWriter{w: w}
	bw.printf("graph linkage {\n")
	bw.printf("  label=%q;\n", a.System)
	bw.printf("  node [fontsize=10];\n")
	for _, p := range a.Partitions {
		bw.printf("  subgraph cluster_p%d {\n", p.ID)
		if p.Coupled {
			bw.printf("    label=\"partition %d (COUPLED: %s)\";\n", p.ID, strings.Join(p.Subjects, ","))
			bw.printf("    style=filled; fillcolor=mistyrose;\n")
		} else {
			bw.printf("    label=\"partition %d\";\n", p.ID)
		}
		for _, e := range p.Entities {
			bw.printf("    %s [shape=ellipse,label=%q];\n", nodeID(p.ID, "e", e), e)
		}
		for _, h := range p.Handles {
			bw.printf("    %s [shape=box,label=%q];\n", nodeID(p.ID, "h", h), h)
		}
		for _, edge := range p.Edges {
			bw.printf("    %s -- %s [label=\"%d\"];\n",
				nodeID(p.ID, "e", edge.Entity), nodeID(p.ID, "h", edge.Handle), edge.Count)
		}
		bw.printf("  }\n")
	}
	bw.printf("}\n")
	return bw.err
}

// nodeID builds a partition-scoped DOT identifier: the same entity
// appearing in two partitions gets distinct nodes, keeping clusters
// disjoint.
func nodeID(partition int, class, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d_%s_", partition, class)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteGraphJSON exports the linkage graph as a single indented JSON
// document for programmatic consumers that prefer one object over the
// JSONL stream.
func WriteGraphJSON(w io.Writer, a *Audit) error {
	doc := struct {
		System     string      `json:"system"`
		Experiment string      `json:"experiment,omitempty"`
		Decoupled  bool        `json:"decoupled"`
		Degree     int         `json:"degree"`
		Coalition  []string    `json:"coalition"`
		Partitions []Partition `json:"partitions"`
	}{
		System:     a.System,
		Experiment: a.ID,
		Decoupled:  a.Verdict.Decoupled,
		Degree:     a.Verdict.Degree,
		Coalition:  a.Coalition,
		Partitions: a.Partitions,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
