// Package provenance turns a ledger run into an explainable audit:
// for every derived tuple component and every entity link it answers
// "why does entity X know Y?" with the concrete observations behind the
// claim, and it exports the coalition linkage graph showing which
// handle partitions merge under full collusion.
//
// Audits are rendered deterministically. Three rules make the output
// byte-identical across -parallel settings and across runs even though
// admission order and crypto-derived byte strings are not:
//
//  1. Canonical ordering: observations are re-ordered by content
//     (observer, kind, label, level, subject, displayed value, time,
//     phase), not by admission sequence; canonical ids are positions in
//     that order.
//  2. Handle aliasing: raw linkage handles (often digests of
//     run-dependent ciphertexts) never appear in output; they are
//     renamed h1, h2, … in canonical first-use order.
//  3. Redaction: values the classifier did not recognize are opaque
//     blobs whose bytes vary run to run; they render as "(opaque)".
package provenance

import (
	"fmt"
	"sort"
	"strings"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// OpaqueValue replaces unrecognized observation values in all rendered
// output; their concrete bytes are run-dependent ciphertext.
const OpaqueValue = "(opaque)"

// Evidence is one canonical observation as the audit renders it.
// Handles are aliases (h1, h2, …), never raw handle strings.
type Evidence struct {
	ID       int      `json:"id"`
	Observer string   `json:"observer"`
	Kind     string   `json:"kind"`
	Label    string   `json:"label,omitempty"`
	Level    string   `json:"level"`
	Subject  string   `json:"subject,omitempty"`
	Value    string   `json:"value"`
	Opaque   bool     `json:"opaque,omitempty"`
	Handles  []string `json:"handles,omitempty"`
	TimeNS   int64    `json:"time_ns"`
	Phase    string   `json:"phase,omitempty"`
}

// Component is one derived tuple component with its supporting
// evidence, referenced by canonical observation id.
type Component struct {
	Symbol    string `json:"symbol"`
	Kind      string `json:"kind"`
	Label     string `json:"label,omitempty"`
	Level     string `json:"level"`
	Extra     bool   `json:"extra,omitempty"`
	Evidence  []int  `json:"evidence"`
	AxisTotal int    `json:"axis_total"`
}

// Link is one linkage handle an entity holds, with the canonical ids
// of the observations carrying it.
type Link struct {
	Handle string `json:"handle"`
	Obs    []int  `json:"obs"`
}

// Entity is one audited entity: its derived (or, for the user,
// modeled) tuple plus component and link evidence.
type Entity struct {
	Name       string      `json:"name"`
	User       bool        `json:"user,omitempty"`
	Tuple      string      `json:"tuple"`
	Components []Component `json:"components,omitempty"`
	Links      []Link      `json:"links,omitempty"`
}

// ChainHop is one step of a subject's linkage chain: a canonical
// observation id and the handle alias shared with the next hop ("" on
// the final hop).
type ChainHop struct {
	Obs    int    `json:"obs"`
	Handle string `json:"handle,omitempty"`
}

// SubjectLink reports whether the full coalition links one subject's
// sensitive identity to their data, with the proving chain.
type SubjectLink struct {
	Subject string     `json:"subject"`
	Linked  bool       `json:"linked"`
	Chain   []ChainHop `json:"chain,omitempty"`
}

// Edge is one entity–handle incidence inside a partition: how many of
// the entity's observations carry the handle.
type Edge struct {
	Entity string `json:"entity"`
	Handle string `json:"handle"`
	Count  int    `json:"count"`
}

// Partition is one connected component of the coalition's bipartite
// observation/handle graph — the unit that union-find merges. Coupled
// partitions contain both a sensitive identity and sensitive (or
// partial) data of the same subject: each is one realized privacy
// violation under full collusion.
type Partition struct {
	ID       int      `json:"id"`
	Coupled  bool     `json:"coupled"`
	Entities []string `json:"entities"`
	Handles  []string `json:"handles"`
	Subjects []string `json:"subjects,omitempty"`
	Edges    []Edge   `json:"edges"`
}

// Audit is a complete provenance record for one run: the measured
// system, the decoupling verdict, canonical observations, per-entity
// evidence, per-subject linkage chains, and the coalition partition
// graph.
type Audit struct {
	// ID tags the audit with an experiment id when batch-produced by
	// cmd/experiments -audit; empty for standalone audits.
	ID          string
	System      string
	Verdict     core.Verdict
	Coalition   []string
	TotalObs    int
	HandleCount int
	Entities    []Entity
	Evidence    []Evidence
	Subjects    []SubjectLink
	Partitions  []Partition
}

// Derive builds the audit for a quiesced ledger against the expected
// system model. The coalition analyzed is every non-user entity — the
// worst case the paper's degree-of-decoupling measures.
func Derive(lg *ledger.Ledger, expected *core.System) (*Audit, error) {
	sysEv := lg.DeriveSystemEvidence(expected)
	verdict, err := core.Analyze(sysEv.System)
	if err != nil {
		return nil, fmt.Errorf("provenance: analyze measured system: %w", err)
	}

	obs, alias := canonicalize(lg.Observations())
	idBySeq := make(map[uint64]int, len(obs))
	for i, o := range obs {
		idBySeq[o.Seq()] = i + 1
	}

	a := &Audit{
		System:      sysEv.System.Name,
		Verdict:     verdict,
		TotalObs:    len(obs),
		HandleCount: len(alias),
	}
	for _, e := range expected.Entities {
		if !e.User {
			a.Coalition = append(a.Coalition, e.Name)
		}
	}

	for i := range obs {
		a.Evidence = append(a.Evidence, renderEvidence(obs[i], i+1, alias))
	}

	for _, ee := range sysEv.Entities {
		ent := Entity{Name: ee.Name, User: ee.User, Tuple: ee.Tuple.Symbol()}
		for _, ce := range ee.Components {
			c := Component{
				Symbol:    ce.Component.Symbol(),
				Kind:      ce.Component.Kind.String(),
				Label:     ce.Component.Label,
				Level:     ce.Component.Level.String(),
				Extra:     ce.Extra,
				Evidence:  idsOf(ce.Evidence, idBySeq),
				AxisTotal: ce.AxisTotal,
			}
			ent.Components = append(ent.Components, c)
		}
		for _, le := range ee.Links {
			ent.Links = append(ent.Links, Link{Handle: alias[le.Handle], Obs: idsOf(le.Evidence, idBySeq)})
		}
		sort.Slice(ent.Links, func(i, j int) bool {
			return aliasNum(ent.Links[i].Handle) < aliasNum(ent.Links[j].Handle)
		})
		a.Entities = append(a.Entities, ent)
	}

	for _, r := range adversary.LinkSubjectsEvidence(obs, a.Coalition) {
		sl := SubjectLink{Subject: r.Subject, Linked: r.Linked}
		for _, hop := range r.Path {
			sl.Chain = append(sl.Chain, ChainHop{Obs: hop.Obs + 1, Handle: alias[hop.Handle]})
		}
		a.Subjects = append(a.Subjects, sl)
	}

	a.Partitions = partitions(obs, a.Coalition, alias)
	return a, nil
}

func renderEvidence(o ledger.Observation, id int, alias map[string]string) Evidence {
	ev := Evidence{
		ID:       id,
		Observer: o.Observer,
		Kind:     o.Kind.String(),
		Label:    o.Label,
		Level:    o.Level.String(),
		Subject:  o.Subject,
		Value:    displayValue(o),
		Opaque:   !o.Recognized,
		TimeNS:   o.Time.Nanoseconds(),
		Phase:    o.Phase,
	}
	for _, h := range o.Handles {
		ev.Handles = append(ev.Handles, alias[h])
	}
	return ev
}

func idsOf(evidence []ledger.Observation, idBySeq map[uint64]int) []int {
	ids := make([]int, 0, len(evidence))
	for _, o := range evidence {
		ids = append(ids, idBySeq[o.Seq()])
	}
	sort.Ints(ids)
	return ids
}

func displayValue(o ledger.Observation) string {
	if o.Recognized {
		return o.Value
	}
	return OpaqueValue
}

// contentLess orders observations by content alone — every field that
// is stable across runs, none that depends on admission order or raw
// ciphertext bytes.
func contentLess(a, b ledger.Observation) bool {
	if a.Observer != b.Observer {
		return a.Observer < b.Observer
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	if a.Level != b.Level {
		return a.Level < b.Level
	}
	if a.Subject != b.Subject {
		return a.Subject < b.Subject
	}
	if av, bv := displayValue(a), displayValue(b); av != bv {
		return av < bv
	}
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Phase < b.Phase
}

// canonicalize re-orders observations content-first and renames every
// handle to an alias h1, h2, … assigned in first-use order.
//
// Observations whose content ties (e.g. twenty opaque proxy records
// differing only in which client leg they carry) are disambiguated by
// structural handle keys computed with color refinement (1-WL) over
// the bipartite observation/handle graph: a handle's key is the hash
// of the sorted keys of the observations carrying it, iterated until
// the partition stops refining. The keys derive purely from content
// and graph shape, so they are identical across admission orders and
// across runs with different raw handle bytes. Observations still tied
// after refinement are structurally interchangeable — any relative
// order renders the same bytes.
func canonicalize(obs []ledger.Observation) ([]ledger.Observation, map[string]string) {
	hObs := map[string][]int{}
	for i, o := range obs {
		for _, h := range o.Handles {
			hObs[h] = append(hObs[h], i)
		}
	}

	content := make([]string, len(obs))
	for i, o := range obs {
		content[i] = contentKey(o)
	}

	hKey := refineHandleKeys(obs, content, hObs)

	obsKey := make([]string, len(obs))
	for i, o := range obs {
		var b strings.Builder
		for _, h := range o.Handles {
			b.WriteString(hKey[h])
			b.WriteByte(',')
		}
		obsKey[i] = b.String()
	}

	idx := make([]int, len(obs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if contentLess(obs[i], obs[j]) {
			return true
		}
		if contentLess(obs[j], obs[i]) {
			return false
		}
		return obsKey[i] < obsKey[j]
	})

	ordered := make([]ledger.Observation, len(obs))
	for p, i := range idx {
		ordered[p] = obs[i]
	}
	aliasIdx := map[string]int{}
	for _, o := range ordered {
		for _, h := range o.Handles {
			if _, ok := aliasIdx[h]; !ok {
				aliasIdx[h] = len(aliasIdx) + 1
			}
		}
	}
	alias := make(map[string]string, len(aliasIdx))
	for h, n := range aliasIdx {
		alias[h] = fmt.Sprintf("h%d", n)
	}
	return ordered, alias
}

// refineHandleKeys computes a structural key per handle by color
// refinement: each round folds the observations' (content key + handle
// keys) back into the handles carrying them. Refinement only ever
// splits key groups (each next key includes the previous), so the
// partition is stable once the distinct-key count stops growing.
func refineHandleKeys(obs []ledger.Observation, content []string, hObs map[string][]int) map[string]string {
	hKey := make(map[string]string, len(hObs))
	distinct := 0
	full := make([]string, len(obs))
	for round := 0; round < 2*len(obs)+2; round++ {
		for i, o := range obs {
			var b strings.Builder
			b.WriteString(content[i])
			for _, h := range o.Handles {
				b.WriteByte('|')
				b.WriteString(hKey[h])
			}
			full[i] = ledger.Hash([]byte(b.String()))
		}
		next := make(map[string]string, len(hObs))
		seen := map[string]bool{}
		for h, idxs := range hObs {
			keys := make([]string, len(idxs))
			for j, i := range idxs {
				keys[j] = full[i]
			}
			sort.Strings(keys)
			next[h] = ledger.Hash([]byte(hKey[h] + "!" + strings.Join(keys, ",")))
			seen[next[h]] = true
		}
		hKey = next
		if len(seen) == distinct {
			break
		}
		distinct = len(seen)
	}
	return hKey
}

// contentKey serializes the run-stable fields of an observation into a
// single comparable string (the same fields contentLess orders by).
func contentKey(o ledger.Observation) string {
	return strings.Join([]string{
		o.Observer, o.Kind.String(), o.Label, o.Level.String(),
		o.Subject, displayValue(o), o.Time.String(), o.Phase,
	}, "\x00")
}

// aliasNum parses the numeric part of an "h<N>" alias for numeric
// ordering of handle lists.
func aliasNum(alias string) int {
	n := 0
	for _, c := range strings.TrimPrefix(alias, "h") {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// partitions runs union-find over the coalition's bipartite
// observation/handle graph — the same structure adversary.LinkSubjects
// merges — and reports each connected component.
func partitions(obs []ledger.Observation, coalition []string, alias map[string]string) []Partition {
	members := map[string]bool{}
	for _, m := range coalition {
		members[m] = true
	}

	// Nodes 0..len(obs)-1 are observations; handle nodes follow.
	handleNode := map[string]int{}
	parent := make([]int, len(obs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	inCoalition := make([]bool, len(obs))
	for i, o := range obs {
		if !members[o.Observer] {
			continue
		}
		inCoalition[i] = true
		for _, h := range o.Handles {
			hn, ok := handleNode[h]
			if !ok {
				hn = len(parent)
				handleNode[h] = hn
				parent = append(parent, hn)
			}
			union(i, hn)
		}
	}

	// Group coalition observations by root, ordered by first (lowest
	// canonical id) member.
	groupOf := map[int]int{}
	var groups [][]int
	for i := range obs {
		if !inCoalition[i] {
			continue
		}
		root := find(i)
		gi, ok := groupOf[root]
		if !ok {
			gi = len(groups)
			groupOf[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}

	var out []Partition
	for gi, group := range groups {
		p := Partition{ID: gi}
		entities := map[string]bool{}
		idSubjects := map[string]bool{}
		dataSubjects := map[string]bool{}
		handleSet := map[string]bool{}
		edgeCount := map[Edge]int{}
		for _, i := range group {
			o := obs[i]
			entities[o.Observer] = true
			if o.Subject != "" {
				switch {
				case o.Kind == core.Identity && o.Level == core.Sensitive:
					idSubjects[o.Subject] = true
				case o.Kind == core.Data && o.Level >= core.Partial:
					dataSubjects[o.Subject] = true
				}
			}
			for _, h := range o.Handles {
				ha := alias[h]
				handleSet[ha] = true
				edgeCount[Edge{Entity: o.Observer, Handle: ha}]++
			}
		}
		subjects := map[string]bool{}
		for s := range idSubjects {
			subjects[s] = true
			if dataSubjects[s] {
				p.Coupled = true
			}
		}
		for s := range dataSubjects {
			subjects[s] = true
		}
		for s := range subjects {
			p.Subjects = append(p.Subjects, s)
		}
		sort.Strings(p.Subjects)
		for e := range entities {
			p.Entities = append(p.Entities, e)
		}
		sort.Strings(p.Entities)
		for h := range handleSet {
			p.Handles = append(p.Handles, h)
		}
		sort.Slice(p.Handles, func(i, j int) bool { return aliasNum(p.Handles[i]) < aliasNum(p.Handles[j]) })
		for e, n := range edgeCount {
			e.Count = n
			p.Edges = append(p.Edges, e)
		}
		sort.Slice(p.Edges, func(i, j int) bool {
			if p.Edges[i].Entity != p.Edges[j].Entity {
				return p.Edges[i].Entity < p.Edges[j].Entity
			}
			return aliasNum(p.Edges[i].Handle) < aliasNum(p.Edges[j].Handle)
		})
		out = append(out, p)
	}
	return out
}
