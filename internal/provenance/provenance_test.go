package provenance

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

const nClients = 6

// buildRun constructs an ODoH-shaped scenario — proxy sees who,
// target sees what, a shared target leg joins them — with THREE
// sources of run-to-run nondeterminism the audit must erase:
// admission order (perm), raw handle bytes, and ciphertext bytes (both
// vary with run).
func buildRun(run int, perm []int) (*ledger.Ledger, *core.System) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	target := fmt.Sprintf("tl-%d", run) // raw handles differ per run
	type op func()
	var ops []op
	for i := 0; i < nClients; i++ {
		i := i
		client := fmt.Sprintf("client-%d", i)
		query := fmt.Sprintf("query-%d", i)
		cls.RegisterIdentity(client, client, "", core.Sensitive)
		cls.RegisterData(query, client, "", core.Sensitive)
		leg := fmt.Sprintf("cl-%d-%d", i, run)
		ct := fmt.Sprintf("ct-%d-%d", i, run) // unrecognized → opaque
		ops = append(ops,
			func() { lg.SawIdentity("Proxy", client, leg) },
			func() { lg.SawData("Proxy", ct, leg, target) },
			func() { lg.SawData("Target", query, target) },
		)
	}
	for _, i := range perm {
		ops[i]()
	}
	sys := &core.System{
		Name: "odoh-shaped",
		Entities: []core.Entity{
			{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "Proxy", Knows: core.Tuple{core.SensID(), core.NonSensData()}},
			{Name: "Target", Knows: core.Tuple{core.NonSensID(), core.SensData()}},
		},
	}
	return lg, sys
}

func renderAll(t *testing.T, a *Audit) (report, jsonl, dot, graph string) {
	t.Helper()
	var r, j, d, g bytes.Buffer
	if err := WriteReport(&r, a); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if err := WriteJSONL(&j, a); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := WriteDOT(&d, a); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if err := WriteGraphJSON(&g, a); err != nil {
		t.Fatalf("WriteGraphJSON: %v", err)
	}
	return r.String(), j.String(), d.String(), g.String()
}

// TestAuditByteDeterminism is the core determinism contract: audits of
// the same logical run must render byte-identically even when
// admission order, raw handle strings, and ciphertext bytes all differ
// — exactly what varies across -parallel settings and across process
// runs.
func TestAuditByteDeterminism(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	var baseR, baseJ, baseD, baseG string
	for run := 0; run < 6; run++ {
		perm := rng.Perm(3 * nClients)
		lg, sys := buildRun(run, perm)
		a, err := Derive(lg, sys)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		r, j, d, g := renderAll(t, a)
		if run == 0 {
			baseR, baseJ, baseD, baseG = r, j, d, g
			continue
		}
		for name, pair := range map[string][2]string{
			"report": {baseR, r}, "jsonl": {baseJ, j}, "dot": {baseD, d}, "graphjson": {baseG, g},
		} {
			if pair[0] != pair[1] {
				t.Errorf("run %d: %s output differs from run 0:\n--- run 0 ---\n%s\n--- run %d ---\n%s",
					run, name, firstDiff(pair[0], pair[1]), run, "")
			}
		}
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}

// TestAuditContent pins the semantic content of the audit on the
// ODoH-shaped run: verdict, evidence coverage, chains, redaction,
// aliasing, and partition structure.
func TestAuditContent(t *testing.T) {
	t.Parallel()
	lg, sys := buildRun(0, seqPerm(3*nClients))
	a, err := Derive(lg, sys)
	if err != nil {
		t.Fatal(err)
	}

	if !a.Verdict.Decoupled || a.Verdict.Degree != 2 {
		t.Errorf("verdict: %+v, want decoupled at degree 2", a.Verdict)
	}
	if a.TotalObs != 3*nClients {
		t.Errorf("TotalObs = %d", a.TotalObs)
	}
	// Handles: one client leg per client plus one shared target leg.
	if a.HandleCount != nClients+1 {
		t.Errorf("HandleCount = %d, want %d", a.HandleCount, nClients+1)
	}

	// Every non-user component at a level above non-sensitive must cite
	// at least one supporting observation (the ISSUE acceptance bar).
	for _, e := range a.Entities {
		if e.User {
			if len(e.Components) != 0 {
				t.Errorf("user entity carries measured components")
			}
			continue
		}
		for _, c := range e.Components {
			if c.Level != core.NonSensitive.String() && len(c.Evidence) == 0 {
				t.Errorf("entity %s component %s: level %s with no evidence", e.Name, c.Symbol, c.Level)
			}
			for _, id := range c.Evidence {
				if id < 1 || id > a.TotalObs {
					t.Errorf("entity %s: evidence id %d out of range", e.Name, id)
				}
				o := a.Evidence[id-1]
				if o.Observer != e.Name || o.Kind != c.Kind || o.Label != c.Label || o.Level != c.Level {
					t.Errorf("entity %s component %s: cited obs %+v does not match", e.Name, c.Symbol, o)
				}
			}
		}
	}

	// All clients linked, each through a 3-hop chain whose middle hop is
	// the opaque proxy record.
	if len(a.Subjects) != nClients {
		t.Fatalf("%d subject links, want %d", len(a.Subjects), nClients)
	}
	for _, s := range a.Subjects {
		if !s.Linked || len(s.Chain) != 3 {
			t.Errorf("subject %s: linked=%v chain=%v, want 3-hop link", s.Subject, s.Linked, s.Chain)
			continue
		}
		mid := a.Evidence[s.Chain[1].Obs-1]
		if !mid.Opaque || mid.Value != OpaqueValue {
			t.Errorf("subject %s: middle hop %+v should be the opaque proxy record", s.Subject, mid)
		}
	}

	// The shared target leg connects everything: one coupled partition.
	if len(a.Partitions) != 1 || !a.Partitions[0].Coupled {
		t.Fatalf("partitions: %+v, want a single coupled partition", a.Partitions)
	}
	if got := a.Partitions[0].Entities; len(got) != 2 {
		t.Errorf("partition entities: %v", got)
	}

	// No raw handle or ciphertext bytes may leak into any output.
	_, jsonl, dot, graph := renderAll(t, a)
	for _, leak := range []string{"tl-0", "cl-0-0", "ct-0-0"} {
		for name, out := range map[string]string{"jsonl": jsonl, "dot": dot, "graphjson": graph} {
			if strings.Contains(out, leak) {
				t.Errorf("%s output leaks raw string %q", name, leak)
			}
		}
	}
	if !strings.Contains(jsonl, OpaqueValue) {
		t.Errorf("jsonl output lost the opaque marker")
	}
}

func seqPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// TestPartitionsSplit checks that handle-disjoint sessions form
// separate partitions with independent coupling verdicts.
func TestPartitionsSplit(t *testing.T) {
	t.Parallel()
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("alice-addr", "alice", "", core.Sensitive)
	cls.RegisterData("alice-secret", "alice", "", core.Sensitive)
	cls.RegisterIdentity("bob-addr", "bob", "", core.Sensitive)
	lg := ledger.New(cls, nil)
	// Session 1: identity and data share a handle — coupled.
	lg.SawIdentity("VPN", "alice-addr", "s1")
	lg.SawData("VPN", "alice-secret", "s1")
	// Session 2: only an identity — cannot couple.
	lg.SawIdentity("VPN", "bob-addr", "s2")

	sys := &core.System{
		Name: "vpn-toy",
		Entities: []core.Entity{
			{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "VPN", Knows: core.Tuple{core.SensID(), core.NonSensData()}},
		},
	}
	a, err := Derive(lg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Partitions) != 2 {
		t.Fatalf("partitions: %+v, want 2", a.Partitions)
	}
	coupled := 0
	for _, p := range a.Partitions {
		if p.Coupled {
			coupled++
		}
	}
	if coupled != 1 {
		t.Errorf("coupled partitions = %d, want exactly 1", coupled)
	}
	if a.Verdict.Decoupled {
		t.Errorf("VPN holding both sides must not be decoupled")
	}

	var report bytes.Buffer
	if err := WriteReport(&report, a); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alice: LINKED", "bob: not linkable", "COUPLED"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}
