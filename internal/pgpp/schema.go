package pgpp

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.2.3 split across the two identity axes:
// the gateway's billing flow carries the human identity (axis H) next
// to a blinded auth token, while the core's attach flow carries a
// shuffled network identity (axis N, non-sensitive by construction)
// next to mobility events. The blind token is the only thing crossing
// between them, and it is opaque on both sides.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "pgpp",
		System:  "Pretty Good Phone Privacy",
		Section: "3.2.3",
		Doc:     "PGPP: billing/authentication (who pays) decoupled from connectivity (where a device is) via blind-token attach credentials and shuffled IMSIs.",
		Axes: []schema.Axis{
			{Kind: core.Identity, Label: "H"},
			{Kind: core.Identity, Label: "N"},
			{Kind: core.Data},
		},
		Messages: []schema.Message{
			{
				Name: "pgpp_token_request",
				Doc:  "authenticated billing request for attach tokens",
				Fields: []schema.Field{
					{Name: "account", Label: schema.Identity, Axis: "H"},
					{Name: "blinded_token", Label: schema.Opaque},
				},
			},
			{
				Name: "pgpp_token_response",
				Fields: []schema.Field{
					{Name: "blind_sig", Label: schema.Opaque},
				},
			},
			{
				Name: "pgpp_attach",
				Doc:  "network attach: shuffled identity, blind credential, mobility event",
				Fields: []schema.Field{
					{Name: "shuffled_imsi", Label: schema.Routing, Axis: "N"},
					{Name: "attach_token", Label: schema.Opaque},
					{Name: "location_event", Label: schema.Content},
				},
			},
			{
				Name: "pgpp_attach_accept",
				Fields: []schema.Field{
					{Name: "bearer", Label: schema.Opaque},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "User", User: true,
				Knows: core.Tuple{core.SensID("H"), core.SensID("N"), core.SensData()},
				Sends: []schema.Use{
					{Message: "pgpp_token_request", Fields: []string{"account"}},
					{Message: "pgpp_attach", Fields: []string{"shuffled_imsi", "location_event"}},
				},
				Receives: []schema.Use{
					{Message: "pgpp_token_response"},
					{Message: "pgpp_attach_accept"},
				},
			},
			{
				Name: GatewayName,
				Receives: []schema.Use{
					// The blinded token is signed, never read; no mobility
					// data ever reaches the gateway.
					{Message: "pgpp_token_request", Fields: []string{"account"}},
				},
				Sends: []schema.Use{{Message: "pgpp_token_response"}},
			},
			{
				Name: CoreName,
				Receives: []schema.Use{
					// The attach token is verified blindly; the shuffled IMSI
					// is routing metadata on the network-identity axis.
					{Message: "pgpp_attach", Fields: []string{"shuffled_imsi", "location_event"}},
				},
				Sends: []schema.Use{{Message: "pgpp_attach_accept"}},
			},
		},
		Flows: []schema.Flow{
			{From: "User", To: GatewayName, Message: "pgpp_token_request", Handle: "billing"},
			{From: GatewayName, To: "User", Message: "pgpp_token_response", Handle: "billing"},
			{From: "User", To: CoreName, Message: "pgpp_attach", Handle: "attach"},
			{From: CoreName, To: "User", Message: "pgpp_attach_accept", Handle: "attach"},
		},
	}
}
