package pgpp

import "testing"

func TestRingDist(t *testing.T) {
	cases := []struct{ a, b, cells, want int }{
		{0, 0, 9, 0},
		{0, 1, 9, 1},
		{0, 8, 9, 1}, // wraps
		{2, 6, 9, 4},
		{0, 5, 10, 5},
	}
	for _, c := range cases {
		if got := ringDist(c.a, c.b, c.cells); got != c.want {
			t.Errorf("ringDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.cells, got, c.want)
		}
	}
}

// TestContinuityAttackRelinksShuffledPseudonyms: the side-channel
// caveat measured. With per-attach shuffling the naive tracker gets
// ~1/#sessions, but chaining by spatio-temporal continuity recovers a
// large fraction of trajectories in a sparse deployment.
func TestContinuityAttackRelinksShuffledPseudonyms(t *testing.T) {
	// Sparse: few users, many cells -> few co-location collisions, so
	// continuity chaining works well for the adversary.
	cfg := SimConfig{
		Users: 4, Cells: 50, Steps: 80, SessionLen: 10, EpochLen: 40,
		Policy: ShufflePerAttach, PGPP: true, Seed: 3, KeyBits: testKeyBits, Prepaid: 10,
	}
	res, err := RunSim(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive := TrackingAccuracy(res.Core.Log(), res.NetIDOwner)
	continuity := ContinuityAttack(res.Core.Log(), res.NetIDOwner, cfg.Cells, 1)
	if naive > 0.2 {
		t.Errorf("naive accuracy = %.3f, expected low under per-attach shuffle", naive)
	}
	if continuity < naive+0.3 {
		t.Errorf("continuity attack (%.3f) did not substantially beat naive (%.3f) in a sparse deployment", continuity, naive)
	}
	t.Logf("sparse: naive %.3f, continuity %.3f", naive, continuity)
}

// TestDensityDegradesContinuityAttack: co-location is the defense — in
// a dense deployment (many users per cell) the adversary's chains
// cross between users and accuracy falls toward the sparse case's
// naive level. This is PGPP's anonymity-set argument.
func TestDensityDegradesContinuityAttack(t *testing.T) {
	run := func(users, cells int) float64 {
		cfg := SimConfig{
			Users: users, Cells: cells, Steps: 80, SessionLen: 10, EpochLen: 40,
			Policy: ShufflePerAttach, PGPP: true, Seed: 3, KeyBits: testKeyBits, Prepaid: 10,
		}
		res, err := RunSim(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ContinuityAttack(res.Core.Log(), res.NetIDOwner, cells, 1)
	}
	sparse := run(4, 50)
	dense := run(30, 6)
	if dense >= sparse {
		t.Errorf("continuity accuracy should fall with density: sparse %.3f, dense %.3f", sparse, dense)
	}
	t.Logf("continuity accuracy: sparse %.3f, dense %.3f", sparse, dense)
}

func TestContinuityAttackEmptyLog(t *testing.T) {
	if got := ContinuityAttack(nil, nil, 10, 1); got != 0 {
		t.Errorf("empty log accuracy = %v", got)
	}
}

// TestContinuityAttackOnPermanentIDs: with one pseudonym per user the
// attack reduces to the naive tracker (1.0).
func TestContinuityAttackOnPermanentIDs(t *testing.T) {
	cfg := smallConfig(false, ShuffleNever)
	res, err := RunSim(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ContinuityAttack(res.Core.Log(), res.NetIDOwner, cfg.Cells, 1); got != 1.0 {
		t.Errorf("accuracy on permanent IMSIs = %.3f, want 1.0", got)
	}
}
