// Package pgpp implements Pretty Good Phone Privacy (the paper's
// §3.2.3): a cellular architecture in which billing and authentication
// are decoupled from connectivity and mobility.
//
// In the baseline cellular design the core (NGC) authenticates
// subscribers by a permanent IMSI tied to a billing account, so the
// operator's ordinary location-management machinery doubles as a
// per-person tracking system. PGPP moves billing and authentication to
// an external gateway (PGPP-GW) that issues blind-signed attach tokens:
// the gateway knows who pays (▲_H) but never sees mobility; the core
// verifies tokens and serves connectivity under ephemeral network
// identities (△_N) that can be shuffled per policy, so its location log
// no longer names anyone.
//
// The simulation models a cell grid, seeded random-walk mobility, the
// attach/location-update machinery, and the identifier-visibility
// consequences. The tracking adversary in Evaluate scores how much of a
// user's trajectory the core's own log reconstructs — ~1.0 with
// permanent IMSIs, collapsing toward 1/#attaches with per-attach
// shuffling.
package pgpp

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"

	"decoupling/internal/core"
	"decoupling/internal/dcrypto/blindrsa"
	"decoupling/internal/ledger"
)

// Entity names matching the paper's table.
const (
	GatewayName = "PGPP-GW"
	CoreName    = "NGC"
)

// ShufflePolicy controls how often a user's network identity changes.
type ShufflePolicy int

// Policies, in increasing privacy order.
const (
	// ShuffleNever is the baseline: the permanent IMSI is used for every
	// attach.
	ShuffleNever ShufflePolicy = iota
	// ShuffleDaily rotates the network identity every epoch (a "day" of
	// simulation steps).
	ShuffleDaily
	// ShufflePerAttach rotates on every attach.
	ShufflePerAttach
)

// String names the policy.
func (p ShufflePolicy) String() string {
	switch p {
	case ShuffleNever:
		return "never"
	case ShuffleDaily:
		return "daily"
	case ShufflePerAttach:
		return "per-attach"
	default:
		return fmt.Sprintf("ShufflePolicy(%d)", int(p))
	}
}

// Errors returned by the protocol.
var (
	ErrUnknownSubscriber = errors.New("pgpp: unknown subscriber")
	ErrBadToken          = errors.New("pgpp: invalid attach token")
	ErrTokenReused       = errors.New("pgpp: attach token already spent")
	ErrNotAttached       = errors.New("pgpp: device not attached")
	ErrNoBalance         = errors.New("pgpp: account has no token balance")
)

// Gateway is the PGPP-GW: billing and blind token issuance. It learns
// the human identity (who pays) and how many tokens they buy — never
// where they go.
type Gateway struct {
	key *rsa.PrivateKey
	lg  *ledger.Ledger

	mu       sync.Mutex
	accounts map[string]int // token balance per account
	issued   int
}

// NewGateway creates a gateway with a fresh token-signing key.
func NewGateway(bits int, lg *ledger.Ledger) (*Gateway, error) {
	key, err := blindrsa.GenerateKey(bits)
	if err != nil {
		return nil, err
	}
	return &Gateway{key: key, lg: lg, accounts: map[string]int{}}, nil
}

// PublicKey returns the token-verification key the core trusts.
func (g *Gateway) PublicKey() *rsa.PublicKey { return &g.key.PublicKey }

// Subscribe provisions an account with a prepaid token balance —
// billing, decoupled from connectivity.
func (g *Gateway) Subscribe(account string, tokens int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.accounts[account] += tokens
}

// IssueToken blind-signs one attach token for the paying account.
func (g *Gateway) IssueToken(account string, blinded []byte) ([]byte, error) {
	g.mu.Lock()
	bal, ok := g.accounts[account]
	if !ok {
		g.mu.Unlock()
		return nil, ErrUnknownSubscriber
	}
	if bal < 1 {
		g.mu.Unlock()
		return nil, ErrNoBalance
	}
	g.accounts[account]--
	g.issued++
	n := g.issued
	g.mu.Unlock()

	if g.lg != nil {
		h := fmt.Sprintf("billing-%d", n)
		g.lg.SawIdentity(GatewayName, account, h)
		g.lg.SawData(GatewayName, "token-issuance", h)
	}
	return blindrsa.BlindSign(g.key, blinded)
}

// AttachToken is a spendable attach credential: a random serial with
// the gateway's blind signature.
type AttachToken struct {
	Serial []byte
	Sig    []byte
}

// LocationEvent is one row of the core's location-management log: a
// network identity seen at a cell at a step. This log is exactly the
// artifact the paper says can be "easily tracked (and sold)".
type LocationEvent struct {
	NetID string
	Cell  int
	Step  int
}

// Core is the NGC: attach, mobility, paging. In PGPP mode it verifies
// gateway tokens; in baseline mode it authenticates permanent IMSIs
// against its subscriber database (and, in the bundled-billing baseline,
// knows the owning account).
type Core struct {
	PGPP       bool
	gatewayKey *rsa.PublicKey
	lg         *ledger.Ledger

	mu          sync.Mutex
	subscribers map[string]string // imsi -> account (baseline only)
	spent       map[string]bool
	location    map[string]int // netID -> current cell
	log         []LocationEvent
}

// NewCore creates a core. gatewayKey is required in PGPP mode.
func NewCore(pgppMode bool, gatewayKey *rsa.PublicKey, lg *ledger.Ledger) *Core {
	return &Core{
		PGPP: pgppMode, gatewayKey: gatewayKey, lg: lg,
		subscribers: map[string]string{},
		spent:       map[string]bool{},
		location:    map[string]int{},
	}
}

// Provision registers a permanent IMSI for the baseline (non-PGPP)
// flow, bound to its billing account — the coupling PGPP removes.
func (c *Core) Provision(imsi, account string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subscribers[imsi] = account
}

// Attach admits a device under netID at a cell. In PGPP mode the
// credential is an attach token; in baseline mode netID must be a
// provisioned IMSI and the token is ignored.
func (c *Core) Attach(netID string, tok *AttachToken, cell, step int) error {
	if c.PGPP {
		if tok == nil {
			return ErrBadToken
		}
		if err := blindrsa.Verify(c.gatewayKey, tok.Serial, tok.Sig); err != nil {
			return ErrBadToken
		}
		serial := hex.EncodeToString(tok.Serial)
		c.mu.Lock()
		if c.spent[serial] {
			c.mu.Unlock()
			return ErrTokenReused
		}
		c.spent[serial] = true
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		account, ok := c.subscribers[netID]
		c.mu.Unlock()
		if !ok {
			return ErrUnknownSubscriber
		}
		if c.lg != nil {
			// Bundled billing: the baseline core knows who owns the IMSI.
			c.lg.Saw(CoreName, core.Identity, account, "attach:"+netID)
		}
	}
	c.recordPresence(netID, cell, step)
	return nil
}

// Update processes a mobility event (handover / tracking-area update).
func (c *Core) Update(netID string, cell, step int) error {
	c.mu.Lock()
	_, attached := c.location[netID]
	c.mu.Unlock()
	if !attached {
		return ErrNotAttached
	}
	c.recordPresence(netID, cell, step)
	return nil
}

func (c *Core) recordPresence(netID string, cell, step int) {
	c.mu.Lock()
	c.location[netID] = cell
	c.log = append(c.log, LocationEvent{NetID: netID, Cell: cell, Step: step})
	c.mu.Unlock()
	if c.lg != nil {
		h := "attach:" + netID
		c.lg.SawIdentity(CoreName, netID, h)
		c.lg.SawData(CoreName, fmt.Sprintf("presence:%d@%d", cell, step), h)
	}
}

// Page locates a device for incoming traffic — the connectivity
// function that keeps working under PGPP.
func (c *Core) Page(netID string) (cell int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell, ok := c.location[netID]
	if !ok {
		return 0, ErrNotAttached
	}
	return cell, nil
}

// Log returns a copy of the location-management log.
func (c *Core) Log() []LocationEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LocationEvent(nil), c.log...)
}

// Device is one subscriber's handset + SIM.
type Device struct {
	Account string // human/billing identity (▲_H)
	IMSI    string // permanent identity (▲_N when exposed)
	Policy  ShufflePolicy
	// EpochLen is the pseudonym lifetime in steps for ShuffleDaily.
	EpochLen int

	gw        *Gateway
	core      *Core
	rng       *mrand.Rand
	netID     string
	lastEpoch int
	tokens    []*AttachToken
	attachN   int
}

// NewDevice provisions a device. In PGPP mode it pre-purchases tokens
// from the gateway; in baseline mode it registers its IMSI with the
// core.
func NewDevice(account string, policy ShufflePolicy, gw *Gateway, c *Core, rng *mrand.Rand, prepaid int) (*Device, error) {
	imsiBuf := make([]byte, 8)
	if _, err := rand.Read(imsiBuf); err != nil {
		return nil, fmt.Errorf("pgpp: imsi: %w", err)
	}
	d := &Device{
		Account: account,
		IMSI:    "imsi-" + hex.EncodeToString(imsiBuf),
		Policy:  policy,
		gw:      gw, core: c, rng: rng,
	}
	if c.PGPP {
		gw.Subscribe(account, prepaid)
		for i := 0; i < prepaid; i++ {
			tok, err := d.buyToken()
			if err != nil {
				return nil, err
			}
			d.tokens = append(d.tokens, tok)
		}
	} else {
		c.Provision(d.IMSI, account)
	}
	return d, nil
}

// buyToken runs the blind issuance round trip with the gateway.
func (d *Device) buyToken() (*AttachToken, error) {
	serial := make([]byte, 32)
	if _, err := rand.Read(serial); err != nil {
		return nil, fmt.Errorf("pgpp: token serial: %w", err)
	}
	blinded, st, err := blindrsa.Blind(d.gw.PublicKey(), serial)
	if err != nil {
		return nil, err
	}
	blindSig, err := d.gw.IssueToken(d.Account, blinded)
	if err != nil {
		return nil, err
	}
	sig, err := blindrsa.Finalize(d.gw.PublicKey(), st, blindSig)
	if err != nil {
		return nil, err
	}
	return &AttachToken{Serial: serial, Sig: sig}, nil
}

// NetID returns the identity currently presented to the core.
func (d *Device) NetID() string { return d.netID }

// Attaches returns how many attach procedures the device has run.
func (d *Device) Attaches() int { return d.attachN }

// Attach joins the network at a cell, choosing the network identity
// according to the shuffle policy: ShuffleNever keeps one identity
// forever (the baseline IMSI, or in PGPP mode one static pseudonym),
// ShuffleDaily rotates every EpochLen steps, ShufflePerAttach rotates on
// every attach.
func (d *Device) Attach(cell, step int) error {
	var tok *AttachToken
	if d.core.PGPP {
		if len(d.tokens) == 0 {
			t, err := d.buyToken()
			if err != nil {
				return err
			}
			d.tokens = append(d.tokens, t)
		}
		tok = d.tokens[0]
		d.tokens = d.tokens[1:]
		switch d.Policy {
		case ShufflePerAttach:
			d.netID = d.freshPseudonym()
		case ShuffleDaily:
			epochLen := d.EpochLen
			if epochLen <= 0 {
				epochLen = 1
			}
			epoch := step / epochLen
			if d.netID == "" || epoch != d.lastEpoch {
				d.netID = d.freshPseudonym()
				d.lastEpoch = epoch
			}
		default: // ShuffleNever: one static pseudonym
			if d.netID == "" {
				d.netID = d.freshPseudonym()
			}
		}
	} else {
		d.netID = d.IMSI
	}
	d.attachN++
	return d.core.Attach(d.netID, tok, cell, step)
}

func (d *Device) freshPseudonym() string {
	return fmt.Sprintf("tmp-%08x%08x", d.rng.Uint32(), d.rng.Uint32())
}

// Move reports a handover to the core.
func (d *Device) Move(cell, step int) error {
	return d.core.Update(d.netID, cell, step)
}
