package pgpp

import (
	"fmt"
	mrand "math/rand"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// SimConfig parameterizes a mobility simulation.
type SimConfig struct {
	Users      int
	Cells      int
	Steps      int
	SessionLen int // steps between re-attaches
	EpochLen   int // pseudonym lifetime for ShuffleDaily
	Policy     ShufflePolicy
	PGPP       bool // false = baseline cellular (bundled billing, permanent IMSI)
	Seed       int64
	KeyBits    int // gateway blind-signing modulus; small in tests/benches
	Prepaid    int // tokens purchased up front per device
}

// DefaultSimConfig returns the E5 experiment defaults.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Users: 50, Cells: 25, Steps: 200, SessionLen: 20, EpochLen: 100,
		Policy: ShufflePerAttach, PGPP: true, Seed: 1, KeyBits: 1024, Prepaid: 12,
	}
}

// SimResult carries the ground truth and the instrumented parties.
type SimResult struct {
	Config SimConfig
	// Traces is each user's true trajectory (cell per step).
	Traces map[string][]int
	// NetIDOwner is the scoring ground truth: pseudonym -> user.
	NetIDOwner map[string]string
	Core       *Core
	Gateway    *Gateway
	Devices    []*Device
}

// RunSim provisions cfg.Users devices, walks them over the cell grid
// for cfg.Steps steps, re-attaching every cfg.SessionLen steps, and
// returns the ground truth plus the instrumented core and gateway.
//
// If lg is non-nil, the run also registers classification ground truth:
// accounts are sensitive H-identities, permanent IMSIs sensitive
// N-identities, pseudonyms non-sensitive N-identities, and presence
// strings sensitive data.
func RunSim(cfg SimConfig, lg *ledger.Ledger) (*SimResult, error) {
	if cfg.Users <= 0 || cfg.Cells <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("pgpp: degenerate simulation config %+v", cfg)
	}
	if cfg.SessionLen <= 0 {
		cfg.SessionLen = cfg.Steps
	}
	rng := mrand.New(mrand.NewSource(cfg.Seed))

	gw, err := NewGateway(cfg.KeyBits, lg)
	if err != nil {
		return nil, err
	}
	nc := NewCore(cfg.PGPP, gw.PublicKey(), lg)

	res := &SimResult{
		Config:     cfg,
		Traces:     map[string][]int{},
		NetIDOwner: map[string]string{},
		Core:       nc,
		Gateway:    gw,
	}

	var cls *ledger.Classifier
	if lg != nil {
		cls = lg.Classifier()
	}

	for u := 0; u < cfg.Users; u++ {
		account := fmt.Sprintf("user%02d", u)
		if cls != nil {
			// Classification ground truth must precede the first
			// observation (device provisioning buys tokens immediately).
			cls.RegisterIdentity(account, account, "H", core.Sensitive)
		}
		d, err := NewDevice(account, cfg.Policy, gw, nc, rng, cfg.Prepaid)
		if err != nil {
			return nil, err
		}
		d.EpochLen = cfg.EpochLen
		res.Devices = append(res.Devices, d)
		if cls != nil {
			cls.RegisterIdentity(d.IMSI, account, "N", core.Sensitive)
		}
	}

	// Random-walk mobility with per-session attach.
	positions := make([]int, cfg.Users)
	for u := range positions {
		positions[u] = rng.Intn(cfg.Cells)
	}
	for step := 0; step < cfg.Steps; step++ {
		for u, d := range res.Devices {
			// Walk: stay, or step +-1 on the cell ring.
			switch rng.Intn(3) {
			case 0:
				positions[u] = (positions[u] + 1) % cfg.Cells
			case 1:
				positions[u] = (positions[u] - 1 + cfg.Cells) % cfg.Cells
			}
			cell := positions[u]
			account := d.Account
			res.Traces[account] = append(res.Traces[account], cell)
			if cls != nil {
				cls.RegisterData(fmt.Sprintf("presence:%d@%d", cell, step), account, "", core.Sensitive)
			}
			if step%cfg.SessionLen == 0 {
				if err := d.Attach(cell, step); err != nil {
					return nil, fmt.Errorf("pgpp: attach user %s step %d: %w", account, step, err)
				}
				if cls != nil && cfg.PGPP {
					cls.RegisterIdentity(d.NetID(), account, "N", core.NonSensitive)
				}
				res.NetIDOwner[d.NetID()] = account
			} else {
				if err := d.Move(cell, step); err != nil {
					return nil, fmt.Errorf("pgpp: move user %s step %d: %w", account, step, err)
				}
			}
		}
	}
	return res, nil
}

// TrackingAccuracy scores the core-log adversary: for each user, the
// fraction of their location events that fall under their single most
// populous network identity — i.e. how complete a trajectory the log
// reconstructs without any external linking information. Permanent
// identifiers give 1.0; per-attach shuffling approaches
// SessionLen/Steps.
func TrackingAccuracy(log []LocationEvent, owner map[string]string) float64 {
	perUserPerNet := map[string]map[string]int{}
	totals := map[string]int{}
	for _, e := range log {
		user, ok := owner[e.NetID]
		if !ok {
			continue
		}
		if perUserPerNet[user] == nil {
			perUserPerNet[user] = map[string]int{}
		}
		perUserPerNet[user][e.NetID]++
		totals[user]++
	}
	if len(totals) == 0 {
		return 0
	}
	sum := 0.0
	for user, total := range totals {
		best := 0
		for _, c := range perUserPerNet[user] {
			if c > best {
				best = c
			}
		}
		sum += float64(best) / float64(total)
	}
	return sum / float64(len(totals))
}
