package pgpp

import "sort"

// This file implements the intersection-style continuity attack on
// shuffled identifiers: even when every attach uses a fresh pseudonym,
// the core's location log leaks *where* each pseudonym appeared and
// disappeared. A pseudonym vanishing at cell c around step t and a new
// pseudonym appearing near c just after t are probably the same device.
// This is the side-channel caveat the paper attaches to all decoupled
// systems ("up to the limits of what is feasible to reconstruct or
// infer from traffic analysis and other side-channel attack vectors")
// — and it is why PGPP's evaluation cares about co-location density,
// not just shuffling frequency.

// trajectory summarizes one pseudonym's presence in the core log.
type trajectory struct {
	netID               string
	firstStep, lastStep int
	firstCell, lastCell int
	events              int
}

// ringDist is the distance between cells on the simulation's ring.
func ringDist(a, b, cells int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if cells-d < d {
		d = cells - d
	}
	return d
}

// ContinuityAttack chains pseudonyms by spatio-temporal continuity and
// scores tracking accuracy over the resulting chains, exactly as
// TrackingAccuracy scores raw pseudonyms. cells is the ring size;
// maxGap is how many steps after a disappearance the adversary searches
// for a successor (the re-attach gap, typically 1).
func ContinuityAttack(log []LocationEvent, owner map[string]string, cells, maxGap int) float64 {
	// Build per-pseudonym trajectories.
	byNet := map[string]*trajectory{}
	var order []string
	for _, e := range log {
		tr, ok := byNet[e.NetID]
		if !ok {
			tr = &trajectory{netID: e.NetID, firstStep: e.Step, firstCell: e.Cell, lastStep: e.Step, lastCell: e.Cell}
			byNet[e.NetID] = tr
			order = append(order, e.NetID)
		}
		if e.Step < tr.firstStep {
			tr.firstStep, tr.firstCell = e.Step, e.Cell
		}
		if e.Step >= tr.lastStep {
			tr.lastStep, tr.lastCell = e.Step, e.Cell
		}
		tr.events++
	}
	trajs := make([]*trajectory, 0, len(order))
	for _, id := range order {
		trajs = append(trajs, byNet[id])
	}
	sort.Slice(trajs, func(i, j int) bool {
		if trajs[i].firstStep != trajs[j].firstStep {
			return trajs[i].firstStep < trajs[j].firstStep
		}
		return trajs[i].netID < trajs[j].netID
	})

	// Greedy chaining: successor = earliest-starting unclaimed
	// trajectory beginning within maxGap steps of this one's end, at
	// ring distance <= 1 (a device moves at most one cell per step).
	chainOf := map[string]int{}
	nextChain := 0
	claimed := map[string]bool{}
	for _, tr := range trajs {
		if _, ok := chainOf[tr.netID]; !ok {
			chainOf[tr.netID] = nextChain
			nextChain++
		}
		cur := tr
		for {
			var best *trajectory
			for _, cand := range trajs {
				if claimed[cand.netID] || cand.netID == cur.netID {
					continue
				}
				if _, started := chainOf[cand.netID]; started {
					continue
				}
				if cand.firstStep <= cur.lastStep || cand.firstStep > cur.lastStep+maxGap {
					continue
				}
				if ringDist(cand.firstCell, cur.lastCell, cells) > 1 {
					continue
				}
				if best == nil || cand.firstStep < best.firstStep {
					best = cand
				}
			}
			if best == nil {
				break
			}
			claimed[best.netID] = true
			chainOf[best.netID] = chainOf[tr.netID]
			cur = best
		}
	}

	// Score: per user, the largest share of their events falling in a
	// single chain.
	perUserPerChain := map[string]map[int]int{}
	totals := map[string]int{}
	for _, e := range log {
		user, ok := owner[e.NetID]
		if !ok {
			continue
		}
		if perUserPerChain[user] == nil {
			perUserPerChain[user] = map[int]int{}
		}
		perUserPerChain[user][chainOf[e.NetID]]++
		totals[user]++
	}
	if len(totals) == 0 {
		return 0
	}
	sum := 0.0
	for user, total := range totals {
		best := 0
		for _, c := range perUserPerChain[user] {
			if c > best {
				best = c
			}
		}
		sum += float64(best) / float64(total)
	}
	return sum / float64(len(totals))
}
