package pgpp

import (
	mrand "math/rand"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

const testKeyBits = 1024

func smallConfig(pgppMode bool, policy ShufflePolicy) SimConfig {
	return SimConfig{
		Users: 10, Cells: 9, Steps: 60, SessionLen: 10, EpochLen: 30,
		Policy: policy, PGPP: pgppMode, Seed: 7, KeyBits: testKeyBits, Prepaid: 8,
	}
}

func TestBaselineAttachAndPage(t *testing.T) {
	gw, err := NewGateway(testKeyBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	nc := NewCore(false, gw.PublicKey(), nil)
	rng := mrand.New(mrand.NewSource(1))
	d, err := NewDevice("alice", ShuffleNever, gw, nc, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Move(4, 1); err != nil {
		t.Fatal(err)
	}
	cell, err := nc.Page(d.NetID())
	if err != nil || cell != 4 {
		t.Errorf("Page = %d, %v", cell, err)
	}
}

func TestBaselineRejectsUnknownIMSI(t *testing.T) {
	nc := NewCore(false, nil, nil)
	if err := nc.Attach("imsi-unknown", nil, 0, 0); err != ErrUnknownSubscriber {
		t.Errorf("err = %v", err)
	}
}

func TestPGPPAttachRequiresValidToken(t *testing.T) {
	gw, _ := NewGateway(testKeyBits, nil)
	nc := NewCore(true, gw.PublicKey(), nil)
	if err := nc.Attach("tmp-1", nil, 0, 0); err != ErrBadToken {
		t.Errorf("nil token err = %v", err)
	}
	forged := &AttachToken{Serial: []byte("serial"), Sig: make([]byte, 128)}
	if err := nc.Attach("tmp-1", forged, 0, 0); err != ErrBadToken {
		t.Errorf("forged token err = %v", err)
	}
}

func TestPGPPTokenDoubleSpendRejected(t *testing.T) {
	gw, _ := NewGateway(testKeyBits, nil)
	nc := NewCore(true, gw.PublicKey(), nil)
	rng := mrand.New(mrand.NewSource(1))
	d, err := NewDevice("alice", ShufflePerAttach, gw, nc, rng, 2)
	if err != nil {
		t.Fatal(err)
	}
	tok := d.tokens[0]
	if err := nc.Attach("tmp-a", tok, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := nc.Attach("tmp-b", tok, 1, 1); err != ErrTokenReused {
		t.Errorf("double spend err = %v", err)
	}
}

func TestBalanceEnforced(t *testing.T) {
	gw, _ := NewGateway(testKeyBits, nil)
	nc := NewCore(true, gw.PublicKey(), nil)
	rng := mrand.New(mrand.NewSource(1))
	d, err := NewDevice("alice", ShufflePerAttach, gw, nc, rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(0, 0); err != nil {
		t.Fatal(err)
	}
	// Balance exhausted: next attach must fail at purchase time.
	if err := d.Attach(1, 1); err != ErrNoBalance {
		t.Errorf("err = %v", err)
	}
}

func TestMoveRequiresAttach(t *testing.T) {
	nc := NewCore(false, nil, nil)
	if err := nc.Update("ghost", 1, 0); err != ErrNotAttached {
		t.Errorf("err = %v", err)
	}
}

func TestShufflePolicies(t *testing.T) {
	cases := []struct {
		policy       ShufflePolicy
		wantDistinct func(attaches int) int
	}{
		{ShuffleNever, func(int) int { return 1 }},
		{ShufflePerAttach, func(n int) int { return n }},
	}
	for _, c := range cases {
		gw, _ := NewGateway(testKeyBits, nil)
		nc := NewCore(true, gw.PublicKey(), nil)
		rng := mrand.New(mrand.NewSource(1))
		d, err := NewDevice("alice", c.policy, gw, nc, rng, 10)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for i := 0; i < 5; i++ {
			if err := d.Attach(i, i*10); err != nil {
				t.Fatal(err)
			}
			seen[d.NetID()] = true
		}
		if got, want := len(seen), c.wantDistinct(5); got != want {
			t.Errorf("policy %v: %d distinct pseudonyms, want %d", c.policy, got, want)
		}
	}
}

func TestShuffleDailyRotatesPerEpoch(t *testing.T) {
	gw, _ := NewGateway(testKeyBits, nil)
	nc := NewCore(true, gw.PublicKey(), nil)
	rng := mrand.New(mrand.NewSource(1))
	d, err := NewDevice("alice", ShuffleDaily, gw, nc, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.EpochLen = 100
	seen := map[string]bool{}
	for _, step := range []int{0, 30, 60, 90, 110, 150, 210} {
		if err := d.Attach(0, step); err != nil {
			t.Fatal(err)
		}
		seen[d.NetID()] = true
	}
	// Steps fall in epochs 0,0,0,0,1,1,2 -> 3 pseudonyms.
	if len(seen) != 3 {
		t.Errorf("daily shuffle produced %d pseudonyms, want 3", len(seen))
	}
}

// TestTrackingAccuracyShape is the E5 headline: permanent identifiers
// are fully trackable; per-attach shuffling collapses trackability.
func TestTrackingAccuracyShape(t *testing.T) {
	run := func(pgppMode bool, policy ShufflePolicy) float64 {
		res, err := RunSim(smallConfig(pgppMode, policy), nil)
		if err != nil {
			t.Fatal(err)
		}
		return TrackingAccuracy(res.Core.Log(), res.NetIDOwner)
	}
	baseline := run(false, ShuffleNever)
	if baseline != 1.0 {
		t.Errorf("baseline tracking accuracy = %.3f, want 1.0", baseline)
	}
	static := run(true, ShuffleNever)
	if static != 1.0 {
		t.Errorf("PGPP with static pseudonym accuracy = %.3f, want 1.0 (trajectory still linkable)", static)
	}
	daily := run(true, ShuffleDaily)
	perAttach := run(true, ShufflePerAttach)
	if !(perAttach < daily && daily < 1.0) {
		t.Errorf("accuracy ordering violated: per-attach %.3f, daily %.3f, baseline 1.0", perAttach, daily)
	}
	// With 60 steps / 10-step sessions, per-attach should be ~1/6.
	if perAttach > 0.25 {
		t.Errorf("per-attach accuracy = %.3f, want <= 0.25", perAttach)
	}
}

// TestDecouplingTable reproduces the paper's §3.2.3 table, including
// the ▲_H / ▲_N identity decomposition.
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	if _, err := RunSim(smallConfig(true, ShufflePerAttach), lg); err != nil {
		t.Fatal(err)
	}
	expected := core.PGPP()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured PGPP not decoupled: %s", v)
	}
}

// TestBaselineCoupled: the pre-PGPP architecture measured — the core
// holds (▲_H, ▲_N, ●) and is a single point of surveillance.
func TestBaselineCoupled(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	if _, err := RunSim(smallConfig(false, ShuffleNever), lg); err != nil {
		t.Fatal(err)
	}
	tuple := lg.DeriveTuple(CoreName, core.Tuple{
		core.NonSensID("H"), core.NonSensID("N"), core.NonSensData(),
	})
	want := core.Tuple{core.SensID("H"), core.SensID("N"), core.SensData()}
	if !tuple.Equal(want) {
		t.Errorf("baseline NGC tuple = %s, want %s", tuple.Symbol(), want.Symbol())
	}
	if !tuple.Coupled() {
		t.Error("baseline NGC should be coupled")
	}
}

// TestGatewayCoreCollusionCannotLink: blind tokens leave no handle
// chain between billing records and attach records.
func TestGatewayCoreCollusionCannotLink(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	if _, err := RunSim(smallConfig(true, ShufflePerAttach), lg); err != nil {
		t.Fatal(err)
	}
	res := adversary.LinkSubjects(lg.Observations(), []string{GatewayName, CoreName})
	if rate := adversary.LinkageRate(res); rate != 0 {
		t.Errorf("GW+NGC collusion linked %.0f%% of users; blind tokens should prevent this", rate*100)
	}
}

// TestPagingStillWorksUnderPGPP: the functionality claim — connectivity
// (reaching a device) survives the decoupling.
func TestPagingStillWorksUnderPGPP(t *testing.T) {
	res, err := RunSim(smallConfig(true, ShufflePerAttach), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Devices {
		cell, err := res.Core.Page(d.NetID())
		if err != nil {
			t.Fatalf("paging %s: %v", d.Account, err)
		}
		trace := res.Traces[d.Account]
		if got := trace[len(trace)-1]; got != cell {
			t.Errorf("paged %s to cell %d, truth %d", d.Account, cell, got)
		}
	}
}

func TestAnonymitySetGrowsWithShuffling(t *testing.T) {
	// Under per-attach shuffling, the core's view of "who is identity X"
	// is a fresh pseudonym shared with nobody — the anonymity set for
	// any given event is the full user population (all pseudonyms are
	// exchangeable). We approximate by checking pseudonym counts exceed
	// the user count substantially.
	res, err := RunSim(smallConfig(true, ShufflePerAttach), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NetIDOwner) < 3*res.Config.Users {
		t.Errorf("pseudonym count %d too small for %d users", len(res.NetIDOwner), res.Config.Users)
	}
}

func TestRunSimRejectsDegenerateConfig(t *testing.T) {
	if _, err := RunSim(SimConfig{}, nil); err == nil {
		t.Error("degenerate config accepted")
	}
}

func BenchmarkSimPGPP(b *testing.B) {
	cfg := smallConfig(true, ShufflePerAttach)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSim(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
