// Package mpr implements a Multi-Party Relay (the paper's §3.2.4, the
// iCloud Private Relay architecture): two nested HTTP CONNECT tunnels
// run by distinct parties, over real loopback TCP.
//
//	client ──TCP──▶ Relay 1 ──TCP──▶ Relay 2 ──TCP──▶ Origin
//	         CONNECT r2      (spliced bytes)
//	         └──TLS(relay2)──▶ CONNECT origin
//	                └──────TLS(origin)──────▶ HTTP request
//
// Relay 1 sees the client's address and that they use the relay system
// (▲, ⊙) — the inner leg is TLS to relay 2, so the inner CONNECT target
// is invisible to it. Relay 2 terminates that TLS and sees the origin
// host from the CONNECT line (the paper's ⊙/● FQDN leak) but knows the
// client only as a connection from relay 1 (△). The origin serves a
// TLS request arriving from relay 2's address (△, ●).
//
// The linkage handles recorded by the relays are the literal TCP
// 4-tuple endpoint strings: relay 1's dial-side local address IS relay
// 2's observed remote address, so colluding neighbors genuinely hold a
// shared join key while non-adjacent parties do not — the paper's §4.1
// argument emerging from real sockets.
//
// Relay 1 optionally gates access on a bearer token (Private Relay
// authenticates subscribers at the first hop), pluggable so the
// privacypass issuer can supply unlinkable tokens.
package mpr

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"

	"decoupling/internal/ledger"
)

// Entity names matching the paper's table.
const (
	Relay1Name = "Relay 1"
	Relay2Name = "Relay 2"
	OriginName = "Origin"
)

// Errors returned by the client dialer.
var (
	ErrTunnelRefused = errors.New("mpr: tunnel establishment refused")
)

// TokenValidator authorizes access at relay 1; nil means open access.
type TokenValidator func(token string) error

// Relay is one CONNECT-proxy hop. TLS, if non-nil, is terminated on
// accepted connections (used at relay 2, whose clients reach it through
// relay 1's opaque splice).
type Relay struct {
	Name     string
	TLS      *tls.Config
	Validate TokenValidator
	// SourceIP, if set, is the loopback alias the relay binds for its
	// outbound dials (distinct organizations, distinct addresses; also
	// rules out address-string collisions with client sockets).
	SourceIP net.IP
	lg       *ledger.Ledger

	ln       net.Listener
	mu       sync.Mutex
	tunnels  int
	rejected int
	closed   bool
	wg       sync.WaitGroup
}

// NewRelay creates a relay; call Start to begin serving.
func NewRelay(name string, tlsConf *tls.Config, validate TokenValidator, lg *ledger.Ledger) *Relay {
	return &Relay{Name: name, TLS: tlsConf, Validate: validate, lg: lg}
}

// Start listens on a fresh loopback port and serves until Close.
func (r *Relay) Start() (addr string, err error) {
	r.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("mpr: listen: %w", err)
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r.ln.Addr().String(), nil
}

// Close stops the listener and waits for active tunnels to wind down is
// not attempted — tunnels die with their connections.
func (r *Relay) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

// Tunnels reports how many tunnels were established.
func (r *Relay) Tunnels() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tunnels
}

// Rejected reports how many CONNECTs were refused.
func (r *Relay) Rejected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rejected
}

func (r *Relay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go r.handle(conn)
	}
}

func (r *Relay) handle(conn net.Conn) {
	defer conn.Close()
	if r.TLS != nil {
		tconn := tls.Server(conn, r.TLS)
		if err := tconn.Handshake(); err != nil {
			r.reject()
			return
		}
		conn = tconn
	}
	br := bufio.NewReader(conn)
	req, err := http.ReadRequest(br)
	if err != nil {
		r.reject()
		return
	}
	if req.Method != http.MethodConnect {
		fmt.Fprintf(conn, "HTTP/1.1 405 Method Not Allowed\r\n\r\n")
		r.reject()
		return
	}
	if r.Validate != nil {
		tok := strings.TrimPrefix(req.Header.Get("Proxy-Authorization"), "PrivateToken ")
		if err := r.Validate(tok); err != nil {
			fmt.Fprintf(conn, "HTTP/1.1 407 Proxy Authentication Required\r\n\r\n")
			r.reject()
			return
		}
	}
	target := req.Host
	dialer := &net.Dialer{}
	if r.SourceIP != nil {
		dialer.LocalAddr = &net.TCPAddr{IP: r.SourceIP}
	}
	upstream, err := dialer.Dial("tcp", target)
	if err != nil {
		fmt.Fprintf(conn, "HTTP/1.1 502 Bad Gateway\r\n\r\n")
		r.reject()
		return
	}
	defer upstream.Close()

	if r.lg != nil {
		// The observed remote endpoint is both the identity value and a
		// join key; the dial-side local endpoint is the join key shared
		// with the next hop.
		inLeg := conn.RemoteAddr().String()
		outLeg := upstream.LocalAddr().String()
		r.lg.SawIdentity(r.Name, inLeg, inLeg, outLeg)
		r.lg.SawData(r.Name, "connect:"+target, inLeg, outLeg)
	}

	if _, err := fmt.Fprintf(conn, "HTTP/1.1 200 Connection Established\r\n\r\n"); err != nil {
		return
	}
	r.mu.Lock()
	r.tunnels++
	r.mu.Unlock()

	// Splice. Any bytes the client pipelined behind the CONNECT are
	// already buffered in br and must go upstream first.
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(upstream, br)
		if cw, ok := upstream.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(conn, upstream)
		if cw, ok := conn.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

func (r *Relay) reject() {
	r.mu.Lock()
	r.rejected++
	r.mu.Unlock()
}

// connect issues one CONNECT on an established stream and checks the
// response.
func connect(conn io.ReadWriter, target, token string) error {
	auth := ""
	if token != "" {
		auth = "Proxy-Authorization: PrivateToken " + token + "\r\n"
	}
	if _, err := fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n%s\r\n", target, target, auth); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodConnect})
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s", ErrTunnelRefused, resp.Status)
	}
	if br.Buffered() > 0 {
		return errors.New("mpr: unexpected bytes after CONNECT response")
	}
	return nil
}

// DialConfig carries the client's trust anchors and credentials.
type DialConfig struct {
	// Relay2TLS verifies relay 2's certificate on the inner leg.
	Relay2TLS *tls.Config
	// OriginTLS verifies the origin's certificate on the innermost leg;
	// nil speaks plaintext to the origin (exposing the request to relay
	// 2 — the misconfiguration ablation).
	OriginTLS *tls.Config
	// Token is presented to relay 1.
	Token string
	// OnDial, if set, is called with the client's local address after
	// the TCP connection to relay 1 is up and before any request is
	// sent — experiments use it to register classification ground truth
	// without racing the relay's observation.
	OnDial func(localAddr string)
}

// Dial establishes the nested tunnel chain and returns a connection
// speaking directly to the origin (TLS if cfg.OriginTLS is set).
func Dial(relay1Addr, relay2Addr, originAddr string, cfg *DialConfig) (net.Conn, error) {
	if cfg == nil {
		cfg = &DialConfig{}
	}
	raw, err := net.Dial("tcp", relay1Addr)
	if err != nil {
		return nil, fmt.Errorf("mpr: dial relay1: %w", err)
	}
	if cfg.OnDial != nil {
		cfg.OnDial(raw.LocalAddr().String())
	}
	// Hop 1: CONNECT relay2 through relay1.
	if err := connect(raw, relay2Addr, cfg.Token); err != nil {
		raw.Close()
		return nil, fmt.Errorf("mpr: hop1: %w", err)
	}
	// Hop 2: TLS to relay2 inside the tunnel, then CONNECT origin.
	var inner net.Conn = raw
	if cfg.Relay2TLS != nil {
		tconn := tls.Client(raw, cfg.Relay2TLS)
		if err := tconn.Handshake(); err != nil {
			raw.Close()
			return nil, fmt.Errorf("mpr: relay2 tls: %w", err)
		}
		inner = tconn
	}
	if err := connect(inner, originAddr, ""); err != nil {
		raw.Close()
		return nil, fmt.Errorf("mpr: hop2: %w", err)
	}
	// Innermost: TLS to the origin.
	if cfg.OriginTLS != nil {
		tconn := tls.Client(inner, cfg.OriginTLS)
		if err := tconn.Handshake(); err != nil {
			raw.Close()
			return nil, fmt.Errorf("mpr: origin tls: %w", err)
		}
		return tconn, nil
	}
	return inner, nil
}

// Origin is a plain HTTP(S) server observing what origins observe.
type Origin struct {
	Name string
	lg   *ledger.Ledger
	srv  *http.Server
	ln   net.Listener
}

// NewOrigin creates an origin server; if tlsConf is non-nil it serves
// TLS.
func NewOrigin(name string, tlsConf *tls.Config, lg *ledger.Ledger) *Origin {
	return &Origin{Name: name, lg: lg, srv: &http.Server{TLSConfig: tlsConf}}
}

// Start serves on a fresh loopback port.
func (o *Origin) Start() (addr string, err error) {
	o.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	o.srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o.lg != nil {
			h := r.RemoteAddr
			o.lg.SawIdentity(o.Name, r.RemoteAddr, h)
			o.lg.SawData(o.Name, r.URL.Path, h)
			if geo := r.Header.Get("Geohint"); geo != "" {
				o.lg.SawData(o.Name, "geo:"+geo, h)
			}
		}
		fmt.Fprintf(w, "origin content for %s", r.URL.Path)
	})
	go func() {
		if o.srv.TLSConfig != nil {
			o.srv.ServeTLS(o.ln, "", "")
		} else {
			o.srv.Serve(o.ln)
		}
	}()
	return o.ln.Addr().String(), nil
}

// Close shuts the origin down.
func (o *Origin) Close() error { return o.srv.Close() }

// Stack is a complete two-hop deployment on loopback, with PKI.
type Stack struct {
	PKI        *testPKI
	Relay1     *Relay
	Relay2     *Relay
	Origin     *Origin
	Relay1Addr string
	Relay2Addr string
	OriginAddr string
}

// NewStack builds, starts, and wires a full MPR deployment. validate
// gates relay 1 (nil for open access).
func NewStack(lg *ledger.Ledger, validate TokenValidator) (*Stack, error) {
	pki, err := newTestPKI()
	if err != nil {
		return nil, err
	}
	relay2Cert, err := pki.Issue("relay2.decoupling.test")
	if err != nil {
		return nil, err
	}
	originCert, err := pki.Issue("origin.decoupling.test")
	if err != nil {
		return nil, err
	}

	s := &Stack{PKI: pki}
	s.Relay1 = NewRelay(Relay1Name, nil, validate, lg)
	s.Relay1.SourceIP = net.IPv4(127, 0, 0, 3)
	if s.Relay1Addr, err = s.Relay1.Start(); err != nil {
		return nil, err
	}
	s.Relay2 = NewRelay(Relay2Name, &tls.Config{Certificates: []tls.Certificate{relay2Cert}}, nil, lg)
	s.Relay2.SourceIP = net.IPv4(127, 0, 0, 4)
	if s.Relay2Addr, err = s.Relay2.Start(); err != nil {
		s.Relay1.Close()
		return nil, err
	}
	s.Origin = NewOrigin(OriginName, &tls.Config{Certificates: []tls.Certificate{originCert}}, lg)
	if s.OriginAddr, err = s.Origin.Start(); err != nil {
		s.Relay1.Close()
		s.Relay2.Close()
		return nil, err
	}
	return s, nil
}

// ClientConfig returns a DialConfig trusting the stack's PKI.
func (s *Stack) ClientConfig(token string, onDial func(string)) *DialConfig {
	return &DialConfig{
		Relay2TLS: &tls.Config{RootCAs: s.PKI.Pool, ServerName: "relay2.decoupling.test"},
		OriginTLS: &tls.Config{RootCAs: s.PKI.Pool, ServerName: "origin.decoupling.test"},
		Token:     token,
		OnDial:    onDial,
	}
}

// Close tears the stack down.
func (s *Stack) Close() {
	s.Relay1.Close()
	s.Relay2.Close()
	s.Origin.Close()
}

// Fetch performs one HTTP GET through the stack and returns the body.
func (s *Stack) Fetch(path, token string, onDial func(string)) (string, error) {
	body, conn, err := s.FetchConn(path, token, "", onDial)
	if conn != nil {
		conn.Close()
	}
	return body, err
}

// FetchConn is Fetch with the client connection returned still open —
// measurement runs hold connections so ephemeral ports registered as
// client identities cannot be recycled into relay-side dials during the
// run. The caller must close the returned connection.
func (s *Stack) FetchConn(path, token, geoHint string, onDial func(string)) (string, net.Conn, error) {
	return s.fetch(path, token, geoHint, onDial)
}

// FetchWithGeoHint is Fetch with the §4.4 "real-world regression" knob:
// a coarse location hint sent to the origin so geo-dependent services
// (DRM, licensing) keep working even though the relays hide the
// client's IP. Sharing it is privacy-preserving in granularity but, as
// the paper notes, is information the pure architecture would have
// withheld — the origin's measured tuple gains a partial component.
func (s *Stack) FetchWithGeoHint(path, token, geoHint string, onDial func(string)) (string, error) {
	body, conn, err := s.fetch(path, token, geoHint, onDial)
	if conn != nil {
		conn.Close()
	}
	return body, err
}

func (s *Stack) fetch(path, token, geoHint string, onDial func(string)) (string, net.Conn, error) {
	conn, err := Dial(s.Relay1Addr, s.Relay2Addr, s.OriginAddr, s.ClientConfig(token, onDial))
	if err != nil {
		return "", nil, err
	}
	req, err := http.NewRequest(http.MethodGet, "https://origin.decoupling.test"+path, nil)
	if err != nil {
		return "", conn, err
	}
	if geoHint != "" {
		req.Header.Set("Geohint", geoHint)
	}
	if err := req.Write(conn); err != nil {
		return "", conn, err
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), req)
	if err != nil {
		return "", conn, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", conn, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", conn, fmt.Errorf("mpr: origin returned %s", resp.Status)
	}
	return string(body), conn, nil
}
