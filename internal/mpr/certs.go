package mpr

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// testPKI is a throwaway certificate authority for the loopback
// deployment: the inner tunnel legs (client->relay2, client->origin)
// are real TLS, which is what keeps relay 1 from reading the inner
// CONNECT and relay 2 from reading the request.
type testPKI struct {
	caCert *x509.Certificate
	caKey  *ecdsa.PrivateKey
	Pool   *x509.CertPool
}

// newTestPKI creates a fresh CA.
func newTestPKI() (*testPKI, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("mpr: ca key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "decoupling mpr test CA"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("mpr: ca cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &testPKI{caCert: cert, caKey: key, Pool: pool}, nil
}

// Issue creates a server certificate for the given DNS name, valid for
// loopback addresses.
func (p *testPKI) Issue(name string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("mpr: server key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: name},
		DNSNames:     []string{name},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, p.caCert, &key.PublicKey, p.caKey)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("mpr: server cert: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}
