package mpr

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.2.4 nested-CONNECT relay. The outer
// tunnel carries the client's address next to an inner request only the
// second relay can open; that inner request exposes the origin FQDN
// (partial — the paper's ⊙/● for Relay 2) next to a further layer only
// the origin can open.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "mpr",
		System:  "Multi-Party Relay",
		Section: "3.2.4",
		Doc:     "Multi-Party Relay: two nested CONNECT tunnels operated by distinct organizations split who-the-user-is from where-they-browse.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "mpr_tunnel1",
				Doc:  "outer CONNECT from the client to the ingress relay",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "access_token", Label: schema.Opaque},
					{Name: "inner", Label: schema.Opaque, Encapsulates: "mpr_tunnel2", Openers: []string{Relay2Name}},
				},
			},
			{
				Name: "mpr_carry1",
				Doc:  "the ingress relay's forward of the inner tunnel",
				Fields: []schema.Field{
					{Name: "relay1_addr", Label: schema.Routing},
					{Name: "inner", Label: schema.Opaque, Encapsulates: "mpr_tunnel2", Openers: []string{Relay2Name}},
				},
			},
			{
				Name: "mpr_tunnel2",
				Doc:  "inner CONNECT, visible to the egress relay",
				Fields: []schema.Field{
					// The egress relay learns the origin FQDN — limited
					// request information, the paper's ⊙/●.
					{Name: "origin_fqdn", Label: schema.Query, Partial: true},
					{Name: "inner", Label: schema.Opaque, Encapsulates: "mpr_request", Openers: []string{OriginName}},
				},
			},
			{
				Name: "mpr_carry2",
				Doc:  "the egress relay's forward to the origin",
				Fields: []schema.Field{
					{Name: "relay2_addr", Label: schema.Routing},
					{Name: "inner", Label: schema.Opaque, Encapsulates: "mpr_request", Openers: []string{OriginName}},
				},
			},
			{
				Name: "mpr_request",
				Doc:  "the end-to-end encrypted request, visible only to the origin",
				Fields: []schema.Field{
					{Name: "path", Label: schema.Query},
				},
			},
			{
				Name: "mpr_response",
				Fields: []schema.Field{
					{Name: "sealed_body", Label: schema.Opaque, Encapsulates: "mpr_body", Openers: []string{"User"}},
				},
			},
			{
				Name: "mpr_body",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "User", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "mpr_tunnel1", Fields: []string{"client_addr"}}},
				Receives: []schema.Use{
					{Message: "mpr_response", Fields: []string{"sealed_body"}},
					{Message: "mpr_body", Fields: []string{"body"}},
				},
			},
			{
				Name: Relay1Name,
				Receives: []schema.Use{
					{Message: "mpr_tunnel1", Fields: []string{"client_addr"}},
					{Message: "mpr_response"},
				},
				Sends: []schema.Use{
					{Message: "mpr_carry1", Fields: []string{"relay1_addr"}},
					{Message: "mpr_response"},
				},
			},
			{
				Name: Relay2Name,
				Receives: []schema.Use{
					{Message: "mpr_carry1", Fields: []string{"relay1_addr", "inner"}},
					{Message: "mpr_tunnel2", Fields: []string{"origin_fqdn"}},
					{Message: "mpr_response"},
				},
				Sends: []schema.Use{
					{Message: "mpr_carry2", Fields: []string{"relay2_addr"}},
					{Message: "mpr_response"},
				},
			},
			{
				Name: OriginName,
				Receives: []schema.Use{
					{Message: "mpr_carry2", Fields: []string{"relay2_addr", "inner"}},
					{Message: "mpr_request", Fields: []string{"path"}},
				},
				Sends: []schema.Use{{Message: "mpr_response"}},
			},
		},
		Flows: []schema.Flow{
			{From: "User", To: Relay1Name, Message: "mpr_tunnel1", Handle: "client-conn"},
			{From: Relay1Name, To: Relay2Name, Message: "mpr_carry1", Handle: "inner-conn"},
			{From: Relay2Name, To: OriginName, Message: "mpr_carry2", Handle: "origin-conn"},
			{From: OriginName, To: Relay2Name, Message: "mpr_response", Handle: "origin-conn"},
			{From: Relay2Name, To: Relay1Name, Message: "mpr_response", Handle: "inner-conn"},
			{From: Relay1Name, To: "User", Message: "mpr_response", Handle: "client-conn"},
		},
	}
}
