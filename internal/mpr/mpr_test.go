package mpr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

func TestFetchThroughTwoHops(t *testing.T) {
	stack, err := NewStack(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	body, err := stack.Fetch("/hello", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if body != "origin content for /hello" {
		t.Errorf("body = %q", body)
	}
	if stack.Relay1.Tunnels() != 1 || stack.Relay2.Tunnels() != 1 {
		t.Errorf("tunnels: r1=%d r2=%d", stack.Relay1.Tunnels(), stack.Relay2.Tunnels())
	}
}

func TestMultipleSequentialFetches(t *testing.T) {
	stack, err := NewStack(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	for i := 0; i < 5; i++ {
		body, err := stack.Fetch(fmt.Sprintf("/page/%d", i), "", nil)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if !strings.Contains(body, fmt.Sprintf("/page/%d", i)) {
			t.Errorf("fetch %d body = %q", i, body)
		}
	}
}

func TestConcurrentFetches(t *testing.T) {
	stack, err := NewStack(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, err := stack.Fetch(fmt.Sprintf("/c/%d", i), "", nil)
			errs <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent fetch: %v", err)
		}
	}
}

func TestTokenGateAtRelay1(t *testing.T) {
	validate := func(tok string) error {
		if tok != "valid-token" {
			return errors.New("bad token")
		}
		return nil
	}
	stack, err := NewStack(nil, validate)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if _, err := stack.Fetch("/x", "", nil); err == nil {
		t.Error("tokenless fetch succeeded through gated relay")
	}
	if _, err := stack.Fetch("/x", "wrong", nil); err == nil {
		t.Error("wrong token accepted")
	}
	if _, err := stack.Fetch("/x", "valid-token", nil); err != nil {
		t.Errorf("valid token rejected: %v", err)
	}
	if stack.Relay1.Rejected() != 2 {
		t.Errorf("rejected = %d", stack.Relay1.Rejected())
	}
}

func TestNonConnectRejected(t *testing.T) {
	stack, err := NewStack(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	// Plain GET straight at relay 1.
	conn, err := Dial(stack.Relay1Addr, stack.Relay2Addr, stack.OriginAddr, nil)
	// Dial without TLS config: hop2 CONNECT goes to relay2 in plaintext;
	// relay2 expects TLS and drops the conn, so hop2 fails.
	if err == nil {
		conn.Close()
		t.Error("plaintext inner leg accepted by TLS relay2")
	}
}

// TestDecouplingTable reproduces the paper's §3.2.4 table from real
// socket observations.
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	stack, err := NewStack(lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()

	// Relay 2's partial view: the origin endpoint from the CONNECT line.
	cls.RegisterData("connect:"+stack.OriginAddr, "", "", core.Partial)

	for i := 0; i < 6; i++ {
		who := fmt.Sprintf("user-%d", i)
		path := fmt.Sprintf("/secret/%d", i)
		cls.RegisterData(path, who, "", core.Sensitive)
		_, conn, err := stack.FetchConn(path, "", "", func(localAddr string) {
			cls.RegisterIdentity(localAddr, who, "", core.Sensitive)
		})
		if conn != nil {
			defer conn.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	expected := core.MPR()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured MPR not decoupled: %s", v)
	}
	if v.Degree != 2 {
		t.Errorf("measured degree = %d (coalition %v), want 2 (the two relays)", v.Degree, v.MinCoalition)
	}
}

// TestCollusionStructure: relay 1 alone cannot link; the full
// relay1+relay2+origin coalition can, via the chained TCP 4-tuples.
func TestCollusionStructure(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	stack, err := NewStack(lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("user-%d", i)
		path := fmt.Sprintf("/secret/%d", i)
		cls.RegisterData(path, who, "", core.Sensitive)
		_, conn, err := stack.FetchConn(path, "", "", func(localAddr string) {
			cls.RegisterIdentity(localAddr, who, "", core.Sensitive)
		})
		if conn != nil {
			defer conn.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	obs := lg.Observations()
	if rate := adversary.LinkageRate(adversary.LinkSubjects(obs, []string{Relay1Name})); rate != 0 {
		t.Errorf("relay1 alone linked %.0f%%", rate*100)
	}
	if rate := adversary.LinkageRate(adversary.LinkSubjects(obs, []string{Relay1Name, OriginName})); rate != 0 {
		t.Errorf("relay1+origin (skipping relay2) linked %.0f%%", rate*100)
	}
	if rate := adversary.LinkageRate(adversary.LinkSubjects(obs, []string{Relay1Name, Relay2Name, OriginName})); rate != 1 {
		t.Errorf("full chain collusion linked %.0f%%, want 100%%", rate*100)
	}
}

// TestRelay1NeverSeesOrigin: the load-bearing negative for hop 1.
func TestRelay1NeverSeesOrigin(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	stack, err := NewStack(lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if _, err := stack.Fetch("/private", "", nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range lg.ByObserver(Relay1Name) {
		if strings.Contains(o.Value, stack.OriginAddr) || strings.Contains(o.Value, "/private") {
			t.Errorf("relay 1 observed origin information: %q", o.Value)
		}
	}
	// And relay 2 never sees the path (it is inside origin TLS).
	for _, o := range lg.ByObserver(Relay2Name) {
		if strings.Contains(o.Value, "/private") {
			t.Errorf("relay 2 observed the request path: %q", o.Value)
		}
	}
}

// TestPlaintextOriginLeakAblation: without TLS to the origin, relay 2
// sees the full request — the misconfiguration the nested encryption
// exists to prevent. (The request bytes flow through relay 2's splice;
// our relay only records CONNECT targets, so we assert at the transport
// level: the fetch still works and the origin records relay2 as peer.)
func TestPlaintextOriginAblation(t *testing.T) {
	lg := ledger.New(ledger.NewClassifier(), nil)
	stack, err := NewStack(lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	// Plain HTTP origin for this ablation.
	plainOrigin := NewOrigin("PlainOrigin", nil, lg)
	plainAddr, err := plainOrigin.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer plainOrigin.Close()

	cfg := stack.ClientConfig("", nil)
	cfg.OriginTLS = nil
	conn, err := Dial(stack.Relay1Addr, stack.Relay2Addr, plainAddr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /leaky HTTP/1.1\r\nHost: plain\r\nConnection: close\r\n\r\n")
	buf := make([]byte, 1024)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "200 OK") {
		t.Errorf("plaintext fetch failed: %q", buf[:n])
	}
}

func BenchmarkFetchThroughStack(b *testing.B) {
	stack, err := NewStack(nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer stack.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stack.Fetch("/bench", "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGeoHintRegression exercises the §4.4 "real-world regression": a
// coarse location hint shared with the origin keeps geo-dependent
// services working but adds a partially sensitive datum to the origin's
// measured knowledge — visible in the ledger, absent without the hint.
func TestGeoHintRegression(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	stack, err := NewStack(lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	cls.RegisterData("geo:EU-west", "alice", "", core.Partial)

	if _, err := stack.FetchWithGeoHint("/stream", "", "EU-west", func(localAddr string) {
		cls.RegisterIdentity(localAddr, "alice", "", core.Sensitive)
	}); err != nil {
		t.Fatal(err)
	}
	var sawGeo bool
	for _, o := range lg.ByObserver(OriginName) {
		if o.Value == "geo:EU-west" {
			if o.Level != core.Partial {
				t.Errorf("geo hint level = %v, want partial", o.Level)
			}
			sawGeo = true
		}
	}
	if !sawGeo {
		t.Error("origin did not observe the geo hint")
	}
	// The relays never see it (it travels inside origin TLS).
	for _, name := range []string{Relay1Name, Relay2Name} {
		for _, o := range lg.ByObserver(name) {
			if strings.Contains(o.Value, "EU-west") {
				t.Errorf("%s observed the geo hint: %q", name, o.Value)
			}
		}
	}
	// Without the hint, the origin's view stays hint-free.
	if _, err := stack.Fetch("/stream2", "", nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range lg.ByObserver(OriginName) {
		if strings.Contains(o.Value, "stream2") && strings.Contains(o.Value, "geo:") {
			t.Error("hint leaked on hintless fetch")
		}
	}
}
