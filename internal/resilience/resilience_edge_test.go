package resilience

import (
	"errors"
	"strings"
	"testing"
	"time"

	"decoupling/internal/simnet"
)

// --- Budget exhaustion mid-failover ------------------------------------

// A shared budget that runs dry between two failover loops must stop the
// second loop at the exact attempt the budget empties, wrap ErrExhausted,
// and say so — not silently truncate the retry schedule.
func TestBudgetExhaustionMidFailover(t *testing.T) {
	budget := NewBudget(3)
	p := Policy{Protocol: "t", MaxAttempts: 3, Budget: budget}
	fail := func(attempt, endpoint int) error { return errors.New("down") }

	// First loop: 3 attempts = 2 retries, leaving 1 in the budget.
	if _, err := DoFailover(p, nil, 1, nil, 2, fail); !errors.Is(err, ErrExhausted) {
		t.Fatalf("first loop: err = %v, want ErrExhausted", err)
	}
	if got := budget.Remaining(); got != 1 {
		t.Fatalf("after first loop: budget = %d, want 1", got)
	}

	// Second loop: attempt 0 free, attempt 1 takes the last unit,
	// attempt 2 finds the budget empty mid-failover.
	var endpoints []int
	_, err := DoFailover(p, nil, 1, nil, 2, func(attempt, endpoint int) error {
		endpoints = append(endpoints, endpoint)
		return errors.New("down")
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("second loop: err = %v, want ErrExhausted", err)
	}
	if !strings.Contains(err.Error(), "retry budget empty") {
		t.Errorf("exhaustion should name the empty budget, got: %v", err)
	}
	if len(endpoints) != 2 {
		t.Errorf("budget allowed %d attempts, want 2 (one first + one retry)", len(endpoints))
	}
	if budget.Remaining() != 0 {
		t.Errorf("budget = %d after exhaustion, want 0", budget.Remaining())
	}

	// The failover rotation must still have happened for the attempts
	// that ran: endpoint 0 then endpoint 1.
	if endpoints[0] != 0 || endpoints[1] != 1 {
		t.Errorf("endpoints visited = %v, want [0 1]", endpoints)
	}
}

// --- Watchdog firing inside a crash window ------------------------------

// A watchdog armed against a node that crashes before the deadline must
// still fire on the virtual clock: crash faults suppress message
// delivery, never failure detection — otherwise a crashed endpoint would
// disable exactly the timer meant to notice it.
func TestWatchdogFiresDuringCrashWindow(t *testing.T) {
	net := simnet.New(1)
	net.Register("srv", func(n simnet.Transport, msg simnet.Message) {})
	net.ApplyFaults(simnet.NewFaultPlan().Crash("srv", 0, 100*time.Millisecond))

	var firedAt time.Duration
	fired := 0
	Watchdog(net, nil, "t", 50*time.Millisecond, func() bool { return false }, func() {
		fired++
		firedAt = net.Now()
	})

	// A second watchdog whose operation completes in time must stay
	// silent even though its deadline also lands inside the window.
	completed := 0
	Watchdog(net, nil, "t", 60*time.Millisecond, func() bool { return true }, func() { completed++ })

	net.Run()
	if fired != 1 {
		t.Fatalf("watchdog fired %d times, want 1", fired)
	}
	if firedAt != 50*time.Millisecond {
		t.Errorf("watchdog fired at %v, want 50ms (inside the crash window)", firedAt)
	}
	if completed != 0 {
		t.Errorf("completed operation's watchdog fired %d times, want 0", completed)
	}
}

// --- RetryAsync cancellation ordering -----------------------------------

// When the operation completes between a failed attempt and its
// scheduled retry, the retry callback must observe done() and cancel:
// no further start, no fail. The ordering is exercised on the virtual
// clock with the completion strictly before the retry fires.
func TestRetryAsyncCancelsPendingRetry(t *testing.T) {
	net := simnet.New(1)
	p := Policy{Protocol: "t", MaxAttempts: 4, BaseDelay: 20 * time.Millisecond,
		Timeout: 250 * time.Millisecond}

	starts := 0
	fails := 0
	doneAt := time.Duration(-1)
	isDone := func() bool { return doneAt >= 0 && net.Now() >= doneAt }
	RetryAsync(net, nil, p, 7, func(attempt int) error {
		starts++
		return errors.New("node down") // immediate failure, retry in 20ms
	}, isDone, func(error) { fails++ })

	// Completion lands at 10ms — after attempt 0 failed at t=0, before
	// its retry fires at t=20ms.
	net.After(10*time.Millisecond, func() { doneAt = net.Now() })

	net.Run()
	if starts != 1 {
		t.Errorf("starts = %d, want 1 (retry must cancel on done)", starts)
	}
	if fails != 0 {
		t.Errorf("fail ran %d times, want 0", fails)
	}
}

// When the operation completes between an attempt's start and its
// timeout, the pending watchdog must observe done() and neither retry
// nor fail — completion wins the race against its own timeout.
func TestRetryAsyncCancelsPendingTimeout(t *testing.T) {
	net := simnet.New(1)
	p := Policy{Protocol: "t", MaxAttempts: 2, BaseDelay: 5 * time.Millisecond,
		Timeout: 40 * time.Millisecond}

	starts := 0
	fails := 0
	done := false
	RetryAsync(net, nil, p, 7, func(attempt int) error {
		starts++
		// The attempt "succeeds" asynchronously at t=15ms, inside the
		// 40ms watchdog window.
		net.After(15*time.Millisecond, func() { done = true })
		return nil
	}, func() bool { return done }, func(error) { fails++ })

	net.Run()
	if starts != 1 {
		t.Errorf("starts = %d, want 1 (timeout must not retry a completed op)", starts)
	}
	if fails != 0 {
		t.Errorf("fail ran %d times, want 0", fails)
	}
	if !done {
		t.Error("operation never completed")
	}
}

// Exhaustion ordering: when every attempt times out, fail must run
// exactly once, after the LAST attempt's watchdog — never concurrently
// with a still-pending retry.
func TestRetryAsyncExhaustionFiresOnce(t *testing.T) {
	net := simnet.New(1)
	p := Policy{Protocol: "t", MaxAttempts: 3, BaseDelay: 10 * time.Millisecond,
		Timeout: 30 * time.Millisecond}

	starts := 0
	fails := 0
	var failAt time.Duration
	var lastStartAt time.Duration
	RetryAsync(net, nil, p, 7, func(attempt int) error {
		starts++
		lastStartAt = net.Now()
		return nil // started, but never completes: timeout drives retries
	}, func() bool { return false }, func(err error) {
		fails++
		failAt = net.Now()
		if !errors.Is(err, ErrExhausted) {
			t.Errorf("fail error = %v, want ErrExhausted", err)
		}
	})

	net.Run()
	if starts != 3 {
		t.Errorf("starts = %d, want 3", starts)
	}
	if fails != 1 {
		t.Errorf("fail ran %d times, want exactly 1", fails)
	}
	if failAt < lastStartAt+p.Timeout {
		t.Errorf("fail at %v, before the last attempt's %v timeout elapsed (start %v)",
			failAt, p.Timeout, lastStartAt)
	}
}
