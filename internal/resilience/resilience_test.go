package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
)

// --- Backoff ----------------------------------------------------------

func TestBackoffIsDeterministic(t *testing.T) {
	p := Default("test")
	for attempt := 1; attempt <= 6; attempt++ {
		a := p.Backoff(42, attempt)
		b := p.Backoff(42, attempt)
		if a != b {
			t.Fatalf("attempt %d: %v != %v for the same (seed, attempt)", attempt, a, b)
		}
	}
	if p.Backoff(1, 2) == p.Backoff(2, 2) {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond, // attempt 2
		40 * time.Millisecond, // attempt 3: capped
		40 * time.Millisecond, // attempt 4: stays capped
	}
	for i, w := range want {
		if got := p.Backoff(0, i+1); got != w {
			t.Errorf("Backoff(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond, JitterFrac: 0.25}
	for seed := uint64(0); seed < 200; seed++ {
		d := p.Backoff(seed, 1)
		if d < 100*time.Millisecond || d >= 125*time.Millisecond {
			t.Fatalf("seed %d: backoff %v outside [100ms, 125ms)", seed, d)
		}
	}
}

func TestBackoffEdgeCases(t *testing.T) {
	p := Default("test")
	if p.Backoff(1, 0) != 0 {
		t.Error("attempt 0 should not back off")
	}
	if (Policy{}).Backoff(1, 3) != 0 {
		t.Error("zero BaseDelay should not back off")
	}
}

// --- Do / DoFailover ---------------------------------------------------

func TestDoSucceedsFirstAttempt(t *testing.T) {
	calls := 0
	err := Do(Default("t"), nil, 1, nil, func(attempt int) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	attempts := 0
	p := Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	err := Do(p, nil, 7, func(d time.Duration) { slept = append(slept, d) }, func(attempt int) error {
		if attempt != attempts {
			t.Errorf("attempt = %d, want %d", attempt, attempts)
		}
		attempts++
		if attempts < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d", attempts)
	}
	// One sleep per retry, following the policy's schedule exactly.
	want := []time.Duration{p.Backoff(7, 1), p.Backoff(7, 2)}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("slept %v, want %v", slept, want)
	}
}

func TestDoExhaustionWrapsErrExhausted(t *testing.T) {
	boom := errors.New("boom")
	err := Do(Policy{Protocol: "t", MaxAttempts: 3}, nil, 1, nil, func(int) error { return boom })
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// The last underlying error's text survives for diagnosis.
	if got := err.Error(); !bytes.Contains([]byte(got), []byte("boom")) {
		t.Errorf("exhaustion lost the cause: %q", got)
	}
}

func TestDoFailoverRotatesEndpoints(t *testing.T) {
	var visited []int
	ep, err := DoFailover(Policy{MaxAttempts: 4}, nil, 1, nil, 3, func(attempt, endpoint int) error {
		visited = append(visited, endpoint)
		if endpoint == 2 {
			return nil // only the third endpoint is healthy
		}
		return errors.New("down")
	})
	if err != nil {
		t.Fatal(err)
	}
	if ep != 2 {
		t.Errorf("succeeded endpoint = %d, want 2", ep)
	}
	want := []int{0, 1, 2}
	if len(visited) != 3 || visited[0] != 0 || visited[1] != 1 || visited[2] != 2 {
		t.Errorf("visited %v, want %v", visited, want)
	}
}

func TestDoFailoverWrapsAroundTheRing(t *testing.T) {
	var visited []int
	_, err := DoFailover(Policy{MaxAttempts: 5}, nil, 1, nil, 2, func(attempt, endpoint int) error {
		visited = append(visited, endpoint)
		return errors.New("down")
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatal("want exhaustion")
	}
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
}

func TestDoFailoverNoEndpoints(t *testing.T) {
	_, err := DoFailover(Policy{Protocol: "t"}, nil, 1, nil, 0, func(int, int) error { return nil })
	if !errors.Is(err, ErrExhausted) {
		t.Errorf("zero endpoints: %v, want ErrExhausted", err)
	}
}

func TestMaxAttemptsZeroMeansOneAttempt(t *testing.T) {
	calls := 0
	Do(Policy{}, nil, 1, nil, func(int) error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Errorf("calls = %d, want exactly 1", calls)
	}
}

// --- Budget -------------------------------------------------------------

func TestBudgetCapsRetriesAcrossOperations(t *testing.T) {
	b := NewBudget(3)
	p := Policy{MaxAttempts: 10, Budget: b}
	calls := 0
	err := Do(p, nil, 1, nil, func(int) error { calls++; return errors.New("x") })
	if !errors.Is(err, ErrExhausted) {
		t.Fatal("want exhaustion")
	}
	// 1 free first attempt + 3 budgeted retries.
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d", b.Remaining())
	}
	// A second operation sharing the drained budget gets no retries.
	calls = 0
	Do(p, nil, 2, nil, func(int) error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Errorf("second op calls = %d, want 1", calls)
	}
}

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if !b.Take() {
		t.Error("nil budget refused a retry")
	}
	if b.Remaining() != -1 {
		t.Errorf("nil Remaining = %d", b.Remaining())
	}
}

// --- Mode ----------------------------------------------------------------

func TestModeStrings(t *testing.T) {
	if FailClosed.String() != "fail-closed" || FailOpen.String() != "fail-open" {
		t.Errorf("mode strings: %q / %q", FailClosed, FailOpen)
	}
}

// --- RetryAsync / Watchdog on the virtual clock ---------------------------

func TestRetryAsyncImmediateErrorRetries(t *testing.T) {
	net := simnet.New(1)
	p := Policy{Protocol: "t", MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Timeout: 50 * time.Millisecond}
	succeeded := false
	var starts []time.Duration
	RetryAsync(net, nil, p, 9, func(attempt int) error {
		starts = append(starts, net.Now())
		if attempt < 2 {
			return errors.New("refused") // fail fast, no timeout wait
		}
		succeeded = true
		return nil
	}, func() bool { return succeeded }, func(err error) { t.Errorf("fail: %v", err) })
	net.Run()
	if !succeeded {
		t.Fatal("never succeeded")
	}
	// Immediate errors retry after Backoff, not after Timeout.
	want := []time.Duration{0, p.Backoff(9, 1), p.Backoff(9, 1) + p.Backoff(9, 2)}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("attempt starts %v, want %v", starts, want)
		}
	}
}

func TestRetryAsyncTimeoutPathRetries(t *testing.T) {
	net := simnet.New(1)
	p := Policy{Protocol: "t", MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, Timeout: 40 * time.Millisecond}
	delivered := false
	attempts := 0
	RetryAsync(net, nil, p, 3, func(attempt int) error {
		attempts++
		if attempt == 1 {
			// Second attempt "lands" 10ms later, inside its timeout.
			net.After(10*time.Millisecond, func() { delivered = true })
		}
		return nil // the send itself succeeds; the first one just vanishes
	}, func() bool { return delivered }, func(err error) { t.Errorf("fail: %v", err) })
	net.Run()
	if attempts != 2 || !delivered {
		t.Errorf("attempts=%d delivered=%v", attempts, delivered)
	}
}

func TestRetryAsyncExhaustionFailsClosed(t *testing.T) {
	net := simnet.New(1)
	p := Policy{Protocol: "t", MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, Timeout: 30 * time.Millisecond}
	var failErr error
	RetryAsync(net, nil, p, 3,
		func(attempt int) error { return nil }, // starts fine, never completes
		func() bool { return false },
		func(err error) { failErr = err })
	net.Run()
	if !errors.Is(failErr, ErrExhausted) {
		t.Fatalf("fail err = %v, want ErrExhausted", failErr)
	}
}

func TestRetryAsyncStopsWhenDoneBeforeRetry(t *testing.T) {
	net := simnet.New(1)
	p := Policy{Protocol: "t", MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, Timeout: 20 * time.Millisecond}
	attempts := 0
	done := false
	RetryAsync(net, nil, p, 3, func(attempt int) error {
		attempts++
		// The operation completes AFTER the timeout would fire a retry is
		// scheduled, but done() gates every (re)start.
		net.After(5*time.Millisecond, func() { done = true })
		return nil
	}, func() bool { return done }, func(err error) { t.Errorf("fail: %v", err) })
	net.Run()
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (done() should gate retries)", attempts)
	}
}

func TestWatchdog(t *testing.T) {
	net := simnet.New(1)
	timedOut := false
	Watchdog(net, nil, "t", 50*time.Millisecond, func() bool { return false }, func() { timedOut = true })
	net.Run()
	if !timedOut {
		t.Error("watchdog never fired")
	}

	net = simnet.New(1)
	timedOut = false
	Watchdog(net, nil, "t", 50*time.Millisecond, func() bool { return true }, func() { timedOut = true })
	net.Run()
	if timedOut {
		t.Error("watchdog fired although done")
	}
}

// --- Telemetry integration -------------------------------------------

// TestResilienceMetricsRoundTrip drives every new counter (retries,
// timeouts, failovers, exhaustions, simnet fault drops) and checks the
// exposition round-trips byte-identically through the strict parser.
func TestResilienceMetricsRoundTrip(t *testing.T) {
	m := telemetry.NewMetrics()
	tel := telemetry.New("resilience-test", false, m)

	// Failover + retries + a fail-closed exhaustion.
	DoFailover(Policy{Protocol: "odoh", MaxAttempts: 3, BaseDelay: time.Millisecond}, tel, 1, nil, 2,
		func(int, int) error { return errors.New("down") })

	// Timeouts + a fail-open exhaustion on the virtual clock.
	net := simnet.New(5)
	net.Instrument(tel)
	RetryAsync(net, tel, Policy{Protocol: "mixnet", MaxAttempts: 2, BaseDelay: time.Millisecond,
		Timeout: 10 * time.Millisecond, Mode: FailOpen}, 2,
		func(int) error { return nil }, func() bool { return false }, func(error) {})
	net.Run()

	// A fault drop.
	net.Register("sink", func(n simnet.Transport, msg simnet.Message) {})
	net.ApplyFaults(simnet.NewFaultPlan().Crash("sink", 0, 0))
	net.Run()
	net.Send("src", "sink", []byte("x"))

	var first bytes.Buffer
	if err := m.WriteProm(&first); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		telemetry.MetricRetries, telemetry.MetricTimeouts, telemetry.MetricFailovers,
		telemetry.MetricExhausted, telemetry.MetricSimnetFaultDrops,
	} {
		if !bytes.Contains(first.Bytes(), []byte(name)) {
			t.Errorf("exposition missing %s:\n%s", name, first.String())
		}
	}
	for _, mode := range []string{`mode="fail-closed"`, `mode="fail-open"`} {
		if !bytes.Contains(first.Bytes(), []byte(mode)) {
			t.Errorf("exposition missing %s label", mode)
		}
	}
	fams, err := telemetry.ParseExposition(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("strict parser rejected our own output: %v\n%s", err, first.String())
	}
	var second bytes.Buffer
	if err := telemetry.WriteExpFamilies(&second, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("parse(write(m)) != write(m):\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
	}
}

// TestNilTelemetryIsInert: every helper must run with a nil sink (the
// default for un-instrumented experiments).
func TestNilTelemetryIsInert(t *testing.T) {
	if err := Do(Default("t"), nil, 1, nil, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	net := simnet.New(1)
	RetryAsync(net, nil, Policy{MaxAttempts: 1, Timeout: time.Millisecond}, 1,
		func(int) error { return nil }, func() bool { return true }, nil)
	net.Run()
}

// TestRetryScheduleDeterminism: two identical chaos loops produce the
// same attempt timestamps — the property every experiment relies on.
func TestRetryScheduleDeterminism(t *testing.T) {
	run := func() []string {
		net := simnet.New(3)
		p := Policy{Protocol: "t", MaxAttempts: 4, BaseDelay: 5 * time.Millisecond,
			MaxDelay: 40 * time.Millisecond, JitterFrac: 0.25, Timeout: 25 * time.Millisecond}
		var log []string
		for i := 0; i < 5; i++ {
			i := i
			ok := false
			RetryAsync(net, nil, p, uint64(i), func(attempt int) error {
				log = append(log, fmt.Sprintf("op%d attempt%d @%v", i, attempt, net.Now()))
				if attempt < i%3 {
					return errors.New("transient")
				}
				ok = true
				return nil
			}, func() bool { return ok }, nil)
		}
		net.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
