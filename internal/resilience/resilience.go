// Package resilience is the shared retry/timeout/failover layer for the
// decoupled protocol stacks (§4 of the paper: every added hop is an
// added failure mode, and the operational cost of decoupling includes
// recovering from those failures WITHOUT un-decoupling).
//
// The central design rule is the degradation policy. Every protocol
// client that adopts this package declares one, and the default is
// fail-closed: when all decoupled paths are exhausted, the operation
// returns an error wrapping ErrExhausted — it never silently falls back
// to a direct, re-coupling path. A fail-open mode exists so the E16
// counterexample can demonstrate exactly why that fallback is dangerous
// (the ledger-derived tuple flips to COUPLED); production policies
// should never use it.
//
// Everything here is deterministic. Backoff jitter comes from a
// splitmix64 hash of (seed, attempt) rather than a global RNG, so two
// runs with the same seeds produce byte-identical schedules, and
// concurrent operations cannot perturb each other's draws. Timeouts for
// simulator-driven protocols ride the virtual clock (RetryAsync /
// Watchdog over a Clock), so chaos runs are reproducible bit-for-bit.
package resilience

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"decoupling/internal/telemetry"
)

// Mode is a degradation policy.
type Mode int

const (
	// FailClosed (the default) errors out when every decoupled path is
	// exhausted. Availability is sacrificed before privacy.
	FailClosed Mode = iota
	// FailOpen marks a policy whose owner intends to degrade to a
	// direct path after exhaustion. The package still returns an error
	// — the caller performs the (re-coupling) fallback — but the
	// exhaustion is counted under mode="fail-open" so audits can see
	// it. Exists for the E16 counterexample; do not deploy.
	FailOpen
)

func (m Mode) String() string {
	if m == FailOpen {
		return "fail-open"
	}
	return "fail-closed"
}

// ErrExhausted wraps the final error when an operation runs out of
// attempts, endpoints, or budget.
var ErrExhausted = errors.New("resilience: all decoupled paths exhausted")

// Policy bundles the retry knobs for one protocol client.
type Policy struct {
	// Protocol labels telemetry series and spans ("odoh", "mixnet"...).
	Protocol string
	// MaxAttempts is the total attempt budget across all endpoints
	// (<= 0 means exactly one attempt).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac adds up to this fraction of the capped backoff as
	// deterministic jitter (decorrelates retry storms without an RNG).
	JitterFrac float64
	// Timeout is the per-attempt watchdog used by RetryAsync.
	Timeout time.Duration
	// Mode is the degradation policy; the zero value is FailClosed.
	Mode Mode
	// Budget, when non-nil, is a shared cap on retries across many
	// operations (prevents retry storms under correlated failure).
	Budget *Budget
}

// Default returns the stock fail-closed policy used by the protocol
// stacks: 4 attempts, 10ms..160ms exponential backoff with 25% jitter,
// 250ms per-attempt timeout.
func Default(protocol string) Policy {
	return Policy{
		Protocol:    protocol,
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    160 * time.Millisecond,
		JitterFrac:  0.25,
		Timeout:     250 * time.Millisecond,
		Mode:        FailClosed,
	}
}

// splitmix64 is the finalizer from Vigna's SplitMix64: a cheap,
// high-quality bijection used to hash (seed, attempt) into jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Backoff returns the delay before retry number attempt (attempt >= 1).
// The schedule is capped exponential with deterministic jitter: the
// same (policy, seed, attempt) triple always yields the same delay.
func (p Policy) Backoff(seed uint64, attempt int) time.Duration {
	if attempt < 1 || p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.JitterFrac > 0 {
		u := float64(splitmix64(seed^uint64(attempt))%(1<<20)) / (1 << 20) // [0, 1)
		d += time.Duration(float64(d) * p.JitterFrac * u)
	}
	return d
}

// Budget is a shared retry budget: each retry (not first attempts)
// consumes one unit. A nil Budget is unlimited.
type Budget struct{ left atomic.Int64 }

// NewBudget returns a budget allowing n retries in total.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.left.Store(int64(n))
	return b
}

// Take consumes one retry from the budget, reporting whether one was
// available.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	for {
		v := b.left.Load()
		if v <= 0 {
			return false
		}
		if b.left.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// Remaining reports retries left (for tests and reports).
func (b *Budget) Remaining() int {
	if b == nil {
		return -1
	}
	return int(b.left.Load())
}

// Sleeper abstracts how a synchronous retry loop waits. Protocols not
// on the simulator pass nil (backoff windows are logical); simulator
// tests can pass a closure advancing the virtual clock.
type Sleeper func(time.Duration)

// Do runs op with retries under the policy. The attempt number (0-based)
// is passed through; each attempt opens a telemetry span, retries and
// exhaustions feed counters.
func Do(p Policy, tel *telemetry.Telemetry, seed uint64, sleep Sleeper, op func(attempt int) error) error {
	_, err := DoFailover(p, tel, seed, sleep, 1, func(attempt, _ int) error { return op(attempt) })
	return err
}

// DoFailover runs op with retries across n interchangeable endpoints
// (proxies, relays, aggregators): a failed attempt rotates to the next
// endpoint before retrying. It returns the endpoint that succeeded.
// MaxAttempts is the TOTAL budget, not per-endpoint. On exhaustion the
// returned error wraps ErrExhausted; under FailClosed that is final by
// contract — callers must not degrade to a direct path.
func DoFailover(p Policy, tel *telemetry.Telemetry, seed uint64, sleep Sleeper, n int, op func(attempt, endpoint int) error) (int, error) {
	if n <= 0 {
		return -1, fmt.Errorf("%w: no endpoints configured (%s)", ErrExhausted, p.Protocol)
	}
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	proto := telemetry.A("protocol", p.Protocol)
	endpoint := 0
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if !p.Budget.Take() {
				lastErr = fmt.Errorf("retry budget empty after attempt %d: %w", attempt-1, lastErr)
				break
			}
			tel.Count(telemetry.MetricRetries, "Retried attempts per protocol.", 1, proto)
			if d := p.Backoff(seed, attempt); d > 0 && sleep != nil {
				sleep(d)
			}
		}
		sp := tel.Start("resilience.attempt", proto,
			telemetry.A("attempt", telemetry.Itoa(attempt)),
			telemetry.A("endpoint", telemetry.Itoa(endpoint)))
		err := op(attempt, endpoint)
		sp.End()
		if err == nil {
			return endpoint, nil
		}
		lastErr = err
		if n > 1 && attempt < attempts-1 {
			endpoint = (endpoint + 1) % n
			tel.Count(telemetry.MetricFailovers, "Endpoint failovers per protocol.", 1, proto)
		}
	}
	return endpoint, exhausted(p, tel, lastErr)
}

// exhausted counts and wraps an exhaustion under the policy's mode.
func exhausted(p Policy, tel *telemetry.Telemetry, lastErr error) error {
	tel.Count(telemetry.MetricExhausted, "Operations that exhausted every decoupled path.", 1,
		telemetry.A("protocol", p.Protocol), telemetry.A("mode", p.Mode.String()))
	return fmt.Errorf("%w (%s, %s): %v", ErrExhausted, p.Protocol, p.Mode, lastErr)
}

// Clock is the virtual-clock surface the asynchronous helpers need;
// *simnet.Network satisfies it.
type Clock interface {
	Now() time.Duration
	After(d time.Duration, fn func())
}

// Watchdog arms a one-shot timeout on the clock: if done() is still
// false when timeout elapses, the timeout is counted and onTimeout
// runs. Deterministic on the virtual clock.
func Watchdog(c Clock, tel *telemetry.Telemetry, protocol string, timeout time.Duration, done func() bool, onTimeout func()) {
	c.After(timeout, func() {
		if done() {
			return
		}
		tel.Count(telemetry.MetricTimeouts, "Per-attempt timeouts per protocol.", 1,
			telemetry.A("protocol", protocol))
		onTimeout()
	})
}

// RetryAsync drives a fire-and-forget operation (a mixnet send, an
// onion request) under the policy, entirely on the virtual clock:
// start(attempt) launches an attempt; if done() is still false after
// Policy.Timeout, the watchdog backs off and starts the next attempt.
// A start() that errors immediately (ErrNodeDown from the simulator)
// retries on the same schedule without waiting out the timeout. When
// the budget is gone and done() still fails, fail(err) runs with an
// error wrapping ErrExhausted.
func RetryAsync(c Clock, tel *telemetry.Telemetry, p Policy, seed uint64, start func(attempt int) error, done func() bool, fail func(error)) {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	proto := telemetry.A("protocol", p.Protocol)
	var try func(attempt int, lastErr error)
	next := func(attempt int, lastErr error) {
		if attempt+1 >= attempts || !p.Budget.Take() {
			if fail != nil {
				fail(exhausted(p, tel, lastErr))
			}
			return
		}
		tel.Count(telemetry.MetricRetries, "Retried attempts per protocol.", 1, proto)
		d := p.Backoff(seed, attempt+1)
		c.After(d, func() { try(attempt+1, lastErr) })
	}
	try = func(attempt int, lastErr error) {
		if done() {
			return
		}
		sp := tel.Start("resilience.attempt", proto, telemetry.A("attempt", telemetry.Itoa(attempt)))
		err := start(attempt)
		sp.End()
		if err != nil {
			next(attempt, err)
			return
		}
		c.After(timeout, func() {
			if done() {
				return
			}
			tel.Count(telemetry.MetricTimeouts, "Per-attempt timeouts per protocol.", 1, proto)
			next(attempt, fmt.Errorf("attempt %d timed out after %s", attempt, timeout))
		})
	}
	try(0, nil)
}
