package resilience

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Wall-clock coverage: the asynchronous helpers (RetryAsync, Watchdog)
// were written against the simulator's virtual Clock, but the real
// transport drives them from concurrent time.AfterFunc goroutines. These
// tests run them on a real clock under -race, including the case the
// virtual clock can never produce: done() flipping true WHILE a backoff
// sleep is in flight on another goroutine.

// wallClock adapts the real clock to the Clock surface, mirroring how
// nettransport implements it (elapsed-since-start Now, AfterFunc
// timers firing on their own goroutines).
type wallClock struct{ start time.Time }

func newWallClock() *wallClock { return &wallClock{start: time.Now()} }

func (c *wallClock) Now() time.Duration { return time.Since(c.start) }

func (c *wallClock) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// waitFor polls cond with a generous deadline; wall-clock tests assert
// eventual outcomes, never exact timings.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func wallPolicy() Policy {
	return Policy{
		Protocol:    "wall-test",
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		JitterFrac:  0.25,
		Timeout:     30 * time.Millisecond,
	}
}

// TestRetryAsyncRealClockRecovers: attempt 0 fails immediately, attempt
// 1 launches but never completes (timeout path), attempt 2 succeeds.
// All transitions happen on timer goroutines.
func TestRetryAsyncRealClockRecovers(t *testing.T) {
	t.Parallel()
	c := newWallClock()
	var attempts atomic.Int32
	var ok atomic.Bool
	var failed atomic.Bool
	RetryAsync(c, nil, wallPolicy(), 0xFA11,
		func(attempt int) error {
			attempts.Add(1)
			switch attempt {
			case 0:
				return errors.New("injected immediate failure")
			case 1:
				return nil // launched, but done() stays false: watchdog fires
			default:
				ok.Store(true)
				return nil
			}
		},
		func() bool { return ok.Load() },
		func(error) { failed.Store(true) })
	waitFor(t, "third attempt to succeed", func() bool { return ok.Load() })
	waitFor(t, "attempt count to settle", func() bool { return attempts.Load() >= 3 })
	// No further attempts once done() is true: the pending watchdog for
	// attempt 2 must observe done and go quiet.
	time.Sleep(100 * time.Millisecond)
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want exactly 3", got)
	}
	if failed.Load() {
		t.Fatal("fail() ran even though an attempt succeeded")
	}
}

// TestRetryAsyncCancelledDuringBackoffSleep: attempt 0 fails, putting
// the operation into a real backoff sleep; done() flips true while that
// sleep is in flight. The retry timer must fire, observe done, and NOT
// launch another attempt.
func TestRetryAsyncCancelledDuringBackoffSleep(t *testing.T) {
	t.Parallel()
	c := newWallClock()
	p := wallPolicy()
	p.BaseDelay = 60 * time.Millisecond // wide window to land the flip in
	p.JitterFrac = 0
	var attempts atomic.Int32
	var done atomic.Bool
	var failed atomic.Bool
	RetryAsync(c, nil, p, 0xCA9CE1,
		func(attempt int) error {
			attempts.Add(1)
			return fmt.Errorf("attempt %d refused", attempt)
		},
		func() bool { return done.Load() },
		func(error) { failed.Store(true) })
	waitFor(t, "first attempt", func() bool { return attempts.Load() == 1 })
	done.Store(true) // cancel mid-backoff: the 60ms retry timer is pending
	time.Sleep(200 * time.Millisecond)
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d after cancellation during backoff, want 1", got)
	}
	if failed.Load() {
		t.Fatal("fail() ran for a cancelled operation")
	}
}

// TestRetryAsyncRealClockExhausts: every attempt fails immediately; the
// budget drains through real backoff sleeps and fail() reports
// ErrExhausted exactly once.
func TestRetryAsyncRealClockExhausts(t *testing.T) {
	t.Parallel()
	c := newWallClock()
	var attempts atomic.Int32
	var fails atomic.Int32
	var lastErr atomic.Pointer[error]
	RetryAsync(c, nil, wallPolicy(), 0xDEAD,
		func(attempt int) error { attempts.Add(1); return errors.New("always down") },
		func() bool { return false },
		func(err error) { fails.Add(1); lastErr.Store(&err) })
	waitFor(t, "exhaustion", func() bool { return fails.Load() == 1 })
	if got := attempts.Load(); got != 4 {
		t.Fatalf("attempts = %d, want MaxAttempts = 4", got)
	}
	if err := *lastErr.Load(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("fail() error = %v, want ErrExhausted", err)
	}
}

// TestWatchdogRealClock: on a real clock the watchdog fires iff done()
// is still false at the deadline.
func TestWatchdogRealClock(t *testing.T) {
	t.Parallel()
	c := newWallClock()
	var fired atomic.Bool
	Watchdog(c, nil, "wall-test", 20*time.Millisecond, func() bool { return false }, func() { fired.Store(true) })
	waitFor(t, "watchdog to fire", func() bool { return fired.Load() })

	var spurious atomic.Bool
	var done atomic.Bool
	Watchdog(c, nil, "wall-test", 20*time.Millisecond, func() bool { return done.Load() }, func() { spurious.Store(true) })
	done.Store(true)
	time.Sleep(80 * time.Millisecond)
	if spurious.Load() {
		t.Fatal("watchdog fired even though done() was true at the deadline")
	}
}

// TestRetryAsyncConcurrentOperations: many operations share one policy
// and one budget on the real clock — the shape of a loadgen chaos run.
// Under -race this exercises the Budget CAS loop and the per-operation
// state from dozens of timer goroutines at once.
func TestRetryAsyncConcurrentOperations(t *testing.T) {
	t.Parallel()
	c := newWallClock()
	p := wallPolicy()
	p.Budget = NewBudget(200)
	const ops = 32
	var wg sync.WaitGroup
	var succeeded atomic.Int32
	for i := 0; i < ops; i++ {
		i := i
		wg.Add(1)
		var ok atomic.Bool
		RetryAsync(c, nil, p, uint64(i),
			func(attempt int) error {
				if attempt < i%3 {
					return fmt.Errorf("op %d attempt %d refused", i, attempt)
				}
				ok.Store(true)
				return nil
			},
			func() bool { return ok.Load() },
			func(error) {})
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if ok.Load() {
					succeeded.Add(1)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := succeeded.Load(); got != ops {
		t.Fatalf("%d/%d operations succeeded on the real clock", got, ops)
	}
}
