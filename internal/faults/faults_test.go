package faults

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestSpecRoundTripCanonical(t *testing.T) {
	p := NewPlan().
		Crash("mix2", 25*time.Millisecond, 120*time.Millisecond).
		Loss(Wildcard, "mix1", 0.3, 0, 0).
		LatencySpike("exit", "origin", 40*time.Millisecond, 50*time.Millisecond, 90*time.Millisecond).
		Partition("a", "b", 10*time.Millisecond, 0)
	spec := p.Spec()
	back, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(Spec()): %v", err)
	}
	if got := back.Spec(); got != spec {
		t.Fatalf("Spec not canonical:\n first %q\nsecond %q", spec, got)
	}
}

func TestParseRejectsOverlappingCrash(t *testing.T) {
	_, err := ParsePlan("crash:a@0-50ms;crash:*@40ms-60ms")
	if !errors.Is(err, ErrOverlappingCrash) {
		t.Fatalf("overlapping crash windows: err = %v, want ErrOverlappingCrash", err)
	}
}

func TestNamedPlansResolve(t *testing.T) {
	for _, name := range NamedPlans() {
		p, err := PlanFromSpec(name)
		if err != nil || p.Empty() {
			t.Fatalf("named plan %q: plan=%v err=%v", name, p, err)
		}
	}
	if p, err := PlanFromSpec(""); p != nil || err != nil {
		t.Fatalf("empty spec: plan=%v err=%v, want nil/nil", p, err)
	}
}

// TestLossDrawDeterministicPerLink is the property the cross-transport
// chaos equivalence rests on: the fate of the n-th datagram on a link
// depends only on (seed, src, dst, n) — not on call order, other
// links, or which transport asks.
func TestLossDrawDeterministicPerLink(t *testing.T) {
	first := make([]float64, 64)
	for n := range first {
		first[n] = LossDraw(14, "sender03", "mix1", uint64(n))
	}
	// Interleave draws for other links between re-draws: values must
	// not move.
	for n := range first {
		LossDraw(14, "sender04", "mix1", uint64(n))
		LossDraw(99, "sender03", "mix1", uint64(n))
		if got := LossDraw(14, "sender03", "mix1", uint64(n)); got != first[n] {
			t.Fatalf("LossDraw(14, sender03, mix1, %d) moved: %v != %v", n, got, first[n])
		}
	}
	// Different links and seeds give different streams.
	same := 0
	for n := range first {
		if LossDraw(14, "sender04", "mix1", uint64(n)) == first[n] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for two links collide in %d/64 draws", same)
	}
}

func TestLossDrawRoughlyUniform(t *testing.T) {
	const n = 20000
	var sum float64
	below := 0
	for i := 0; i < n; i++ {
		v := LossDraw(1, "a", "b", uint64(i))
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, v)
		}
		sum += v
		if v < 0.3 {
			below++
		}
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean draw %v, want ~0.5", mean)
	}
	if frac := float64(below) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("fraction below 0.3 = %v, want ~0.3", frac)
	}
}

func TestWindowQueriesHonorHalfOpenWindows(t *testing.T) {
	p := NewPlan().
		Crash("m", 10*time.Millisecond, 20*time.Millisecond).
		PartitionOneWay("a", "b", 5*time.Millisecond, 0).
		Loss("x", "y", 0.4, 0, 15*time.Millisecond).
		LatencySpike("x", "y", 7*time.Millisecond, 0, 0).
		LatencySpike("x", "y", 3*time.Millisecond, 0, 0)
	if p.CrashedAt("m", 9*time.Millisecond) || !p.CrashedAt("m", 10*time.Millisecond) || p.CrashedAt("m", 20*time.Millisecond) {
		t.Fatal("crash window not half-open [10ms, 20ms)")
	}
	if !p.PartitionedAt("a", "b", time.Hour) || p.PartitionedAt("b", "a", time.Hour) {
		t.Fatal("one-way partition direction wrong or until<=0 cleared")
	}
	if got := p.LossAt("x", "y", 14*time.Millisecond); got != 0.4 {
		t.Fatalf("LossAt inside window = %v, want 0.4", got)
	}
	if got := p.LossAt("x", "y", 15*time.Millisecond); got != 0 {
		t.Fatalf("LossAt at window end = %v, want 0", got)
	}
	if got := p.SpikeAt("x", "y", time.Second); got != 10*time.Millisecond {
		t.Fatalf("overlapping spikes should sum: %v, want 10ms", got)
	}
}
