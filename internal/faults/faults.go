// Package faults is the transport-neutral fault-plan grammar shared by
// the deterministic simulator (internal/simnet) and the real loopback
// transport (internal/nettransport).
//
// A Plan is a declarative schedule of failures — node crash/restart
// windows, link partitions, burst loss, and latency spikes — evaluated
// against SOME clock. The grammar never says which one: simnet reads
// windows on its virtual clock, nettransport on the wall clock since
// construction. Everything else (window queries, the canonical Spec
// round-trip, the named plans, crash-overlap validation) is identical,
// which is what lets one -faults string drive either transport and lets
// fault plans ride inside replay traces unchanged.
//
// Determinism rules:
//
//   - Windows are half-open [From, Until); Until <= 0 means the fault
//     never clears.
//   - Burst loss is decided by LossDraw, a pure splitmix64 function of
//     (seed, src, dst, per-link attempt counter). Both transports key
//     the counter per directed link, so the n-th in-window datagram on
//     a link meets the same fate no matter how goroutines or virtual
//     events interleave — injected loss is reproducible even where RNG
//     draw ORDER is not. Organic loss (simnet Link.Loss) stays on the
//     simulator's seeded RNG; the two are counted apart.
//   - Crash/restart transition ORDERING against in-flight traffic is
//     transport policy: simnet schedules queue events, nettransport
//     arms wall-clock timers.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"decoupling/internal/transport"
)

// Addr aliases the shared transport address type; fault plans address
// nodes by the same names the transports route on.
type Addr = transport.Addr

// ErrNodeDown is wrapped into Send errors when the source or destination
// node is inside a crash window. Unlike silent link loss, a send to a
// crashed node fails fast — the caller's retry logic gets an immediate,
// typed signal (the moral equivalent of a connection refused).
var ErrNodeDown = errors.New("faults: node down")

// ErrOverlappingCrash is wrapped into ParsePlan errors when two crash
// windows can cover the same node at the same instant. Overlap is
// rejected rather than merged because the transitions are scheduled
// independently: the first window's restart would bring the node up in
// the middle of the second window, silently contradicting the spec.
var ErrOverlappingCrash = errors.New("faults: overlapping crash windows for the same node")

// ErrShed is wrapped into Send errors when an overloaded transport sheds
// a datagram instead of blocking: a bounded queue stayed full past the
// shed deadline. Shedding is always loud — typed error to the sender or
// a counted drop at the receiver, never a silent disappearance.
var ErrShed = errors.New("faults: overloaded, message shed")

// Wildcard matches any node in a fault's Node/Src/Dst position.
const Wildcard Addr = "*"

// Kind enumerates the injectable failure modes.
type Kind int

const (
	// FaultCrash takes a node down for a window: inbound datagrams are
	// dropped, sends from/to it fail with ErrNodeDown, and its pending
	// timers are cancelled.
	FaultCrash Kind = iota
	// FaultPartition silently drops every datagram on a directed link
	// for a window (the wire gives no error — only timeouts notice).
	FaultPartition
	// FaultLoss raises a directed link's drop probability for a window
	// (burst loss).
	FaultLoss
	// FaultSpike adds fixed extra latency on a directed link for a
	// window.
	FaultSpike
)

// Fault is one scheduled failure. Src/Dst/Node may be Wildcard.
type Fault struct {
	Kind Kind
	Node Addr // FaultCrash target
	Src  Addr // link faults: directed source
	Dst  Addr // link faults: directed destination
	// Window [From, Until); Until <= 0 = never clears.
	From, Until time.Duration
	Loss        float64       // FaultLoss probability in [0, 1]
	Extra       time.Duration // FaultSpike added latency
}

func (f Fault) active(t time.Duration) bool {
	return t >= f.From && (f.Until <= 0 || t < f.Until)
}

func matchAddr(pat, a Addr) bool { return pat == Wildcard || pat == a }

// Plan is an immutable-once-applied schedule of faults. The builder
// methods return the plan for chaining.
type Plan struct {
	faults []Fault
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Injector is implemented by transports that can overlay a fault plan
// on live traffic: simnet.Network and nettransport.Net. Callers that
// hold only a transport.Runner type-assert for it, so fault-free
// transports stay fault-free by construction.
type Injector interface {
	ApplyFaults(p *Plan)
}

// Crash schedules node down during [from, until); until <= 0 means no
// restart.
func (p *Plan) Crash(node Addr, from, until time.Duration) *Plan {
	p.faults = append(p.faults, Fault{Kind: FaultCrash, Node: node, From: from, Until: until})
	return p
}

// Partition severs the link between a and b in both directions during
// [from, until).
func (p *Plan) Partition(a, b Addr, from, until time.Duration) *Plan {
	return p.PartitionOneWay(a, b, from, until).PartitionOneWay(b, a, from, until)
}

// PartitionOneWay severs only the directed link src->dst.
func (p *Plan) PartitionOneWay(src, dst Addr, from, until time.Duration) *Plan {
	p.faults = append(p.faults, Fault{Kind: FaultPartition, Src: src, Dst: dst, From: from, Until: until})
	return p
}

// Loss raises the directed link's drop probability to at least prob
// during [from, until).
func (p *Plan) Loss(src, dst Addr, prob float64, from, until time.Duration) *Plan {
	p.faults = append(p.faults, Fault{Kind: FaultLoss, Src: src, Dst: dst, Loss: prob, From: from, Until: until})
	return p
}

// LatencySpike adds extra delay on the directed link during [from,
// until). Overlapping spikes sum.
func (p *Plan) LatencySpike(src, dst Addr, extra, from, until time.Duration) *Plan {
	p.faults = append(p.faults, Fault{Kind: FaultSpike, Src: src, Dst: dst, Extra: extra, From: from, Until: until})
	return p
}

// Merge appends every fault of o (overlay semantics).
func (p *Plan) Merge(o *Plan) *Plan {
	if o != nil {
		p.faults = append(p.faults, o.faults...)
	}
	return p
}

// Faults returns a copy of the schedule.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.faults) == 0 }

// CrashedAt reports whether node is inside any crash window at t. It is
// a pure window query: protocols that run outside any transport (the
// HTTP-based stacks) can evaluate the same plan against their own
// logical clocks.
func (p *Plan) CrashedAt(node Addr, t time.Duration) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults {
		if f.Kind == FaultCrash && matchAddr(f.Node, node) && f.active(t) {
			return true
		}
	}
	return false
}

// PartitionedAt reports whether the directed link src->dst is severed
// at t.
func (p *Plan) PartitionedAt(src, dst Addr, t time.Duration) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults {
		if f.Kind == FaultPartition && matchAddr(f.Src, src) && matchAddr(f.Dst, dst) && f.active(t) {
			return true
		}
	}
	return false
}

// LossAt returns the highest injected loss probability on src->dst at t
// (0 when no loss fault is active).
func (p *Plan) LossAt(src, dst Addr, t time.Duration) float64 {
	if p == nil {
		return 0
	}
	var loss float64
	for _, f := range p.faults {
		if f.Kind == FaultLoss && matchAddr(f.Src, src) && matchAddr(f.Dst, dst) && f.active(t) && f.Loss > loss {
			loss = f.Loss
		}
	}
	return loss
}

// SpikeAt returns the summed extra latency on src->dst at t.
func (p *Plan) SpikeAt(src, dst Addr, t time.Duration) time.Duration {
	if p == nil {
		return 0
	}
	var extra time.Duration
	for _, f := range p.faults {
		if f.Kind == FaultSpike && matchAddr(f.Src, src) && matchAddr(f.Dst, dst) && f.active(t) {
			extra += f.Extra
		}
	}
	return extra
}

// Spec renders the plan in the ParsePlan grammar, one clause per fault
// in schedule order. The output is canonical — parsing it yields an
// equal plan whose Spec is byte-identical — which is what lets fault
// plans ride inside replay traces and shrink by clause removal. Both-
// direction partitions built with Partition serialize as their two
// one-way clauses.
func (p *Plan) Spec() string {
	if p.Empty() {
		return ""
	}
	clauses := make([]string, 0, len(p.faults))
	for _, f := range p.faults {
		w := f.From.String() + "-"
		if f.Until > 0 {
			w += f.Until.String()
		}
		switch f.Kind {
		case FaultCrash:
			clauses = append(clauses, fmt.Sprintf("crash:%s@%s", f.Node, w))
		case FaultPartition:
			clauses = append(clauses, fmt.Sprintf("partition:%s>%s@%s", f.Src, f.Dst, w))
		case FaultLoss:
			clauses = append(clauses, fmt.Sprintf("loss:%s>%s:%s@%s",
				f.Src, f.Dst, strconv.FormatFloat(f.Loss, 'g', -1, 64), w))
		case FaultSpike:
			clauses = append(clauses, fmt.Sprintf("spike:%s>%s:%s@%s", f.Src, f.Dst, f.Extra, w))
		}
	}
	return strings.Join(clauses, ";")
}

// ValidateCrashWindows rejects fault sets where two crash windows can
// cover the same node at the same instant (Wildcard overlaps
// everything).
func ValidateCrashWindows(faults []Fault) error {
	var crashes []Fault
	for _, f := range faults {
		if f.Kind == FaultCrash {
			crashes = append(crashes, f)
		}
	}
	for i, f := range crashes {
		for _, g := range crashes[i+1:] {
			if f.Node != g.Node && f.Node != Wildcard && g.Node != Wildcard {
				continue
			}
			// Half-open windows [From, Until) with Until <= 0 = forever.
			disjoint := (f.Until > 0 && f.Until <= g.From) || (g.Until > 0 && g.Until <= f.From)
			if !disjoint {
				return fmt.Errorf("%w: %s@%s- and %s@%s-", ErrOverlappingCrash, f.Node, f.From, g.Node, g.From)
			}
		}
	}
	return nil
}

// ParsePlan parses a compact spec string:
//
//	crash:NODE@FROM-[UNTIL]
//	partition:A<>B@FROM-[UNTIL]     (both directions)
//	partition:A>B@FROM-[UNTIL]      (one direction)
//	loss:SRC>DST:PROB@FROM-[UNTIL]
//	spike:SRC>DST:EXTRA@FROM-[UNTIL]
//
// Faults are ';'-separated; addresses may be "*"; FROM/UNTIL are Go
// durations ("25ms"); an empty UNTIL means the fault never clears.
//
//	crash:mix2@25ms-120ms;loss:*>mix1:0.3@0-;spike:exit>origin:40ms@50ms-90ms
func ParsePlan(spec string) (*Plan, error) {
	p := NewPlan()
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faults: fault %q: missing kind", part)
		}
		body, window, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faults: fault %q: missing @window", part)
		}
		from, until, err := parseWindow(window)
		if err != nil {
			return nil, fmt.Errorf("faults: fault %q: %w", part, err)
		}
		switch kind {
		case "crash":
			if body == "" {
				return nil, fmt.Errorf("faults: fault %q: missing node", part)
			}
			p.Crash(Addr(body), from, until)
		case "partition":
			if a, b, ok := strings.Cut(body, "<>"); ok {
				p.Partition(Addr(a), Addr(b), from, until)
			} else if a, b, ok := strings.Cut(body, ">"); ok {
				p.PartitionOneWay(Addr(a), Addr(b), from, until)
			} else {
				return nil, fmt.Errorf("faults: fault %q: want A<>B or A>B", part)
			}
		case "loss":
			link, probStr, ok := strings.Cut(body, ":")
			src, dst, ok2 := strings.Cut(link, ">")
			if !ok || !ok2 {
				return nil, fmt.Errorf("faults: fault %q: want SRC>DST:PROB", part)
			}
			prob, err := strconv.ParseFloat(probStr, 64)
			if err != nil || !(prob >= 0 && prob <= 1) {
				return nil, fmt.Errorf("faults: fault %q: loss probability must be in [0,1]", part)
			}
			p.Loss(Addr(src), Addr(dst), prob, from, until)
		case "spike":
			link, extraStr, ok := strings.Cut(body, ":")
			src, dst, ok2 := strings.Cut(link, ">")
			if !ok || !ok2 {
				return nil, fmt.Errorf("faults: fault %q: want SRC>DST:EXTRA", part)
			}
			extra, err := time.ParseDuration(extraStr)
			if err != nil || extra < 0 {
				return nil, fmt.Errorf("faults: fault %q: bad spike duration %q", part, extraStr)
			}
			p.LatencySpike(Addr(src), Addr(dst), extra, from, until)
		default:
			return nil, fmt.Errorf("faults: fault %q: unknown kind %q (crash, partition, loss, spike)", part, kind)
		}
	}
	if err := ValidateCrashWindows(p.faults); err != nil {
		return nil, err
	}
	return p, nil
}

func parseWindow(w string) (from, until time.Duration, err error) {
	fromStr, untilStr, ok := strings.Cut(w, "-")
	if !ok {
		return 0, 0, fmt.Errorf("window %q: want FROM-[UNTIL]", w)
	}
	if fromStr != "" {
		if from, err = time.ParseDuration(fromStr); err != nil || from < 0 {
			return 0, 0, fmt.Errorf("window %q: bad FROM", w)
		}
	}
	if untilStr != "" {
		if until, err = time.ParseDuration(untilStr); err != nil || until <= from {
			return 0, 0, fmt.Errorf("window %q: UNTIL must be a duration after FROM", w)
		}
	}
	return from, until, nil
}

// namedPlans are the canonical chaos schedules selectable by name via
// the -faults flags (spec strings remain accepted for ad-hoc plans).
var namedPlans = map[string]string{
	// flaky: 20% burst loss on every link from t=0, forever.
	"flaky": "loss:*>*:0.2@0-",
	// split: every link severed for a mid-run window.
	"split": "partition:*>*@30ms-80ms",
	// tail: a latency spike on every link mid-run.
	"tail": "spike:*>*:40ms@30ms-120ms",
}

// NamedPlans returns the selectable plan names, sorted.
func NamedPlans() []string {
	names := make([]string, 0, len(namedPlans))
	for n := range namedPlans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NamedPlanSpecs returns a copy of the name -> spec table (for fuzz
// seeding and help text).
func NamedPlanSpecs() map[string]string {
	out := make(map[string]string, len(namedPlans))
	for k, v := range namedPlans {
		out[k] = v
	}
	return out
}

// PlanFromSpec resolves a -faults argument: a registered plan name or a
// ParsePlan spec string. Empty means no plan (nil).
func PlanFromSpec(spec string) (*Plan, error) {
	if spec == "" {
		return nil, nil
	}
	if named, ok := namedPlans[spec]; ok {
		spec = named
	}
	return ParsePlan(spec)
}

// LossDraw maps (seed, src, dst, n) to a uniform float in [0, 1) via
// the splitmix64 finalizer: the fate of the n-th in-window datagram on
// a directed link is a pure function of the transport seed and the
// link, independent of goroutine or virtual-event interleaving. Both
// transports draw from this — never from a shared RNG — for INJECTED
// loss, which is what makes chaos availability tables byte-comparable
// between simnet and the real wire.
func LossDraw(seed int64, src, dst Addr, n uint64) float64 {
	h := mix64(uint64(seed) ^ hashAddr(src)*0x9e3779b97f4a7c15 ^ hashAddr(dst))
	return float64(mix64(h^n)%(1<<20)) / (1 << 20)
}

// mix64 is the splitmix64 finalizer (same construction the resilience
// package uses for jitter): a cheap bijection from uint64 to uint64.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashAddr is FNV-1a over the address bytes.
func hashAddr(a Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return h
}
