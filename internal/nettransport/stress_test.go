package nettransport

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/transport"
)

// TestConcurrentClientsLedgerInvariants is the concurrency stress leg
// of the differential suite: ten thousand clients hammer one observer
// node over the real transport while every delivery admits a two-entry
// observation batch into the sharded ledger. Run under -race in CI.
//
// The invariants checked are the ones the audit chain depends on:
// no observation is dropped, global admission order is linearizable
// (strictly increasing seq with no gaps), and each SawBatch lands as a
// contiguous seq block so an Identity and the Data it arrived with can
// never be interleaved with another client's batch.
func TestConcurrentClientsLedgerInvariants(t *testing.T) {
	const (
		clients    = 10_000
		goroutines = 50
	)
	net := newTest(t, Options{Mode: ModeTCP, DisableCapture: true})
	lg := ledger.New(ledger.NewClassifier(), nil)
	net.Register("server", func(_ transport.Transport, msg transport.Message) {
		lg.SawBatch("server", []ledger.Entry{
			{Kind: core.Identity, Value: string(msg.Src), Handles: []string{string(msg.Src)}},
			{Kind: core.Data, Value: "req:" + string(msg.Payload), Handles: []string{string(msg.Src)}},
		})
	})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < clients; i += goroutines {
				src := transport.Addr(fmt.Sprintf("client%05d", i))
				if err := net.Send(src, "server", []byte(fmt.Sprintf("q%05d", i))); err != nil {
					t.Errorf("Send %d: %v", i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Deliveries start the moment the first Send lands, concurrent with
	// the rest of the storm; Run only waits for quiescence, so totals —
	// not Run's during-call delta — are what the invariants bind.
	net.Run()

	if net.Delivered() != clients || net.Lost() != 0 {
		t.Fatalf("delivered %d, lost %d; want %d reliable deliveries", net.Delivered(), net.Lost(), clients)
	}

	st := lg.Stats()
	if st.Total != 2*clients {
		t.Fatalf("ledger admitted %d observations, want %d (none dropped)", st.Total, 2*clients)
	}
	if len(st.Observers) != 1 || st.Observers[0].Observer != "server" || st.Observers[0].Handles != clients {
		t.Fatalf("stats %+v: want one observer with %d distinct handles", st, clients)
	}

	obs := lg.Observations()
	if len(obs) != 2*clients {
		t.Fatalf("Observations() returned %d, want %d", len(obs), 2*clients)
	}
	for i, o := range obs {
		if o.Seq() != uint64(i)+1 {
			t.Fatalf("observation %d has seq %d: admission order not gap-free", i, o.Seq())
		}
	}
	// Batch contiguity: pairs admitted together stay adjacent, Identity
	// then its Data, both naming the same client handle.
	for i := 0; i < len(obs); i += 2 {
		id, data := obs[i], obs[i+1]
		if id.Kind != core.Identity || data.Kind != core.Data {
			t.Fatalf("batch at seq %d interleaved: kinds %v,%v", id.Seq(), id.Kind, data.Kind)
		}
		if id.Handles[0] != data.Handles[0] {
			t.Fatalf("batch at seq %d split across clients: %q vs %q", id.Seq(), id.Handles[0], data.Handles[0])
		}
	}
}

// TestShutdownMidFlightFailsClosed closes the transport while senders
// are still pushing: every Send after the close must fail with
// ErrClosed (never silently re-route), Close must not deadlock on
// in-flight work, and the message accounting must not invent
// deliveries that never ran a handler.
func TestShutdownMidFlightFailsClosed(t *testing.T) {
	const clients = 2_000
	net := New(Options{Mode: ModeTCP, DisableCapture: true})
	var mu sync.Mutex
	handled := 0
	net.Register("server", func(_ transport.Transport, msg transport.Message) {
		mu.Lock()
		handled++
		mu.Unlock()
	})

	var wg sync.WaitGroup
	var refused, accepted atomic64
	start := make(chan struct{})
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := g; i < clients; i += 20 {
				err := net.Send(transport.Addr(fmt.Sprintf("c%05d", i)), "server", []byte("x"))
				switch {
				case err == nil:
					accepted.add(1)
				case errors.Is(err, ErrClosed):
					refused.add(1)
				default:
					t.Errorf("Send %d: unexpected error %v", i, err)
					return
				}
			}
		}(g)
	}
	close(start)
	// Close concurrently with the send storm.
	if err := net.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	if err := net.Send("late", "server", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close: got %v, want ErrClosed", err)
	}
	if accepted.load()+refused.load() != clients {
		t.Fatalf("accounting: accepted %d + refused %d != %d", accepted.load(), refused.load(), clients)
	}
	mu.Lock()
	h := handled
	mu.Unlock()
	if uint64(h) > accepted.load() {
		t.Fatalf("handled %d messages but only %d were accepted", h, accepted.load())
	}
	if net.Delivered()+net.Lost() > accepted.load() {
		t.Fatalf("delivered %d + lost %d exceeds accepted %d", net.Delivered(), net.Lost(), accepted.load())
	}
}

// atomic64 avoids importing sync/atomic's type zoo into the test body.
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(n uint64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
