package nettransport

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"decoupling/internal/telemetry"
	"decoupling/internal/transport"
)

func newTest(t *testing.T, opts Options) *Net {
	t.Helper()
	n := New(opts)
	t.Cleanup(func() { n.Close() })
	return n
}

// sink is a node that records what reaches it. Its fields are written
// only by the owning dispatcher; tests read them after Run, which the
// pending counter orders before the reads.
type sink struct {
	msgs []transport.Message
}

func (s *sink) handle(_ transport.Transport, msg transport.Message) {
	s.msgs = append(s.msgs, msg)
}

func TestModesDeliver(t *testing.T) {
	const n = 200
	for _, tc := range []struct {
		name string
		mode Mode
	}{
		{"tcp", ModeTCP},
		{"udp", ModeUDP},
		{"http", ModeHTTP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := newTest(t, Options{Mode: tc.mode, Workers: 4})
			var s sink
			net.Register("sink", s.handle)
			for i := 0; i < n; i++ {
				payload := []byte(fmt.Sprintf("msg-%03d", i))
				if err := net.Send(transport.Addr(fmt.Sprintf("c%03d", i)), "sink", payload); err != nil {
					t.Fatalf("Send %d: %v", i, err)
				}
			}
			// Deliveries run concurrently with sends on a real wire, so
			// Run's during-call delta undercounts; totals are the contract.
			net.Run()
			if net.Delivered()+net.Lost() != n {
				t.Fatalf("delivered %d + lost %d, want %d accounted", net.Delivered(), net.Lost(), n)
			}
			// Loopback at this scale should not drop, even on UDP.
			if net.Delivered() != n {
				t.Fatalf("delivered %d of %d (lost %d)", net.Delivered(), n, net.Lost())
			}
			if len(s.msgs) != n {
				t.Fatalf("sink saw %d messages, want %d", len(s.msgs), n)
			}
			seen := map[transport.Addr]bool{}
			for _, m := range s.msgs {
				if m.Dst != "sink" {
					t.Fatalf("message routed to %q", m.Dst)
				}
				seen[m.Src] = true
			}
			if len(seen) != n {
				t.Fatalf("distinct sources %d, want %d", len(seen), n)
			}
		})
	}
}

func TestTCPPerDestinationFIFO(t *testing.T) {
	net := newTest(t, Options{Mode: ModeTCP})
	var s sink
	net.Register("sink", s.handle)
	const n = 500
	for i := 0; i < n; i++ {
		if err := net.Send("src", "sink", []byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	net.Run()
	if got := net.Delivered(); got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	for i, m := range s.msgs {
		if got := int(m.Payload[0])<<8 | int(m.Payload[1]); got != i {
			t.Fatalf("position %d carries sequence %d: TCP per-destination FIFO violated", i, got)
		}
	}
}

// TestRelayChain drives a frame through three forwarding hops — the
// shape of a mixnet cascade — and checks the handler-side Transport
// view can keep sending.
func TestRelayChain(t *testing.T) {
	net := newTest(t, Options{})
	var s sink
	hops := []transport.Addr{"r1", "r2", "r3"}
	for i, addr := range hops {
		next := transport.Addr("sink")
		if i < len(hops)-1 {
			next = hops[i+1]
		}
		self, nxt := addr, next
		net.Register(addr, func(tr transport.Transport, msg transport.Message) {
			if err := tr.Send(self, nxt, append(msg.Payload, byte('.'))); err != nil {
				t.Errorf("relay %s: %v", self, err)
			}
		})
	}
	net.Register("sink", s.handle)
	if err := net.Send("origin", "r1", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Run()
	if got := net.Delivered(); got != 4 {
		t.Fatalf("delivered %d hops, want 4", got)
	}
	if len(s.msgs) != 1 || !bytes.Equal(s.msgs[0].Payload, []byte("x...")) {
		t.Fatalf("sink got %+v, want one message with payload \"x...\"", s.msgs)
	}
	if s.msgs[0].Src != "r3" {
		t.Fatalf("sink sees src %q, want the last hop only", s.msgs[0].Src)
	}
}

// TestHandlerTimersSerialized arms timers from inside a handler and
// checks they run on the owning node's dispatcher: the node-local
// counter needs no lock, and Run waits for the timers.
func TestHandlerTimersSerialized(t *testing.T) {
	net := newTest(t, Options{})
	fired := 0
	var s sink
	net.Register("node", func(tr transport.Transport, msg transport.Message) {
		for i := 0; i < 8; i++ {
			tr.After(time.Duration(i)*time.Millisecond, func() { fired++ })
		}
	})
	net.Register("obs", s.handle)
	for i := 0; i < 4; i++ {
		if err := net.Send("src", "node", []byte("go")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	net.Run()
	if fired != 32 {
		t.Fatalf("fired %d timers, want 32", fired)
	}
}

func TestRunWaitsForDetachedTimers(t *testing.T) {
	net := newTest(t, Options{})
	done := false
	net.After(20*time.Millisecond, func() { done = true })
	net.Run()
	if !done {
		t.Fatal("Run returned before the armed timer fired")
	}
}

func TestSendToUnregistered(t *testing.T) {
	net := newTest(t, Options{})
	if err := net.Send("a", "nobody", []byte("x")); err == nil {
		t.Fatal("Send to unregistered destination succeeded")
	}
}

func TestCloseFailsClosed(t *testing.T) {
	net := New(Options{})
	var s sink
	net.Register("sink", s.handle)
	if err := net.Send("a", "sink", []byte("x")); err != nil {
		t.Fatalf("Send before close: %v", err)
	}
	net.Run()
	if err := net.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := net.Send("a", "sink", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close: got %v, want ErrClosed", err)
	}
	if err := net.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestRegisterReplacesHandler(t *testing.T) {
	net := newTest(t, Options{})
	var first, second sink
	net.Register("sink", first.handle)
	net.Register("sink", second.handle)
	if err := net.Send("a", "sink", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Run()
	if len(first.msgs) != 0 || len(second.msgs) != 1 {
		t.Fatalf("replaced handler got %d, new handler got %d", len(first.msgs), len(second.msgs))
	}
}

func TestCaptureAndTelemetry(t *testing.T) {
	net := newTest(t, Options{})
	tel := telemetry.New("nettransport-test", false, telemetry.NewMetrics())
	net.Instrument(tel)
	var s sink
	net.Register("sink", s.handle)
	if err := net.Send("a", "sink", []byte("four")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Run()
	recs := net.Capture()
	if len(recs) != 1 {
		t.Fatalf("capture has %d records, want 1", len(recs))
	}
	if recs[0].Src != "a" || recs[0].Dst != "sink" || recs[0].Size != 4 {
		t.Fatalf("capture record %+v", recs[0])
	}
	series := tel.Metrics().CounterSeries(telemetry.MetricTransportMessages)
	if len(series) != 1 || series[0].Value != 1 {
		t.Fatalf("transport message counter series %+v", series)
	}
}

// TestLiveInstrumentation covers the wall-clock side of Instrument:
// frames/bytes queued per mode, timer fires, per-node inbox depth, and
// the pending gauge must all report through cached handles, and the
// resulting registry must satisfy the strict exposition round-trip.
func TestLiveInstrumentation(t *testing.T) {
	net := newTest(t, Options{})
	m := telemetry.NewMetrics()
	tel := telemetry.New("nettransport-live", false, m)
	net.Instrument(tel)
	var s sink
	net.Register("sink", s.handle)
	for i := 0; i < 3; i++ {
		if err := net.Send("a", "sink", []byte("data")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	fired := make(chan struct{})
	net.After(time.Millisecond, func() { close(fired) })
	<-fired
	net.Run()

	frames := m.Counter(telemetry.MetricTransportFramesSent, "", telemetry.A("mode", "tcp"))
	if got := frames.Value(); got != 3 {
		t.Errorf("frames sent = %d, want 3", got)
	}
	bytesSent := m.Counter(telemetry.MetricTransportBytesSent, "", telemetry.A("mode", "tcp"))
	if got := bytesSent.Value(); got == 0 {
		t.Error("frame bytes sent = 0, want > 0")
	}
	fires := m.Counter(telemetry.MetricTransportTimerFires, "", telemetry.A("mode", "tcp"))
	if got := fires.Value(); got != 1 {
		t.Errorf("timer fires = %d, want 1", got)
	}
	pending := m.Gauge(telemetry.MetricTransportPending, "", telemetry.A("mode", "tcp"))
	if got := pending.Value(); got != 0 {
		t.Errorf("pending gauge after quiescence = %v, want 0", got)
	}
	depth := m.Gauge(telemetry.MetricTransportInboxDepth, "", telemetry.A("node", "sink"))
	if got := depth.Value(); got < 0 {
		t.Errorf("inbox depth gauge = %v, want >= 0", got)
	}

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("instrumented registry fails strict parse: %v\n%s", err, buf.String())
	}
}

func TestDisableCapture(t *testing.T) {
	net := newTest(t, Options{DisableCapture: true})
	var s sink
	net.Register("sink", s.handle)
	if err := net.Send("a", "sink", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Run()
	if got := net.Capture(); len(got) != 0 {
		t.Fatalf("capture disabled but holds %d records", len(got))
	}
	if net.Delivered() != 1 {
		t.Fatalf("delivered %d, want 1", net.Delivered())
	}
}
