package nettransport

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"decoupling/internal/faults"
	"decoupling/internal/telemetry"
	"decoupling/internal/transport"
)

// countSink counts deliveries under a lock: fault tests read it while
// senders and dispatchers are still moving.
type countSink struct {
	mu sync.Mutex
	n  int
}

func (s *countSink) handle(_ transport.Transport, _ transport.Message) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *countSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func TestCrashWindowRefusesAndRestarts(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode Mode
	}{
		{"tcp", ModeTCP},
		{"udp", ModeUDP},
		{"http", ModeHTTP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := newTest(t, Options{Mode: tc.mode, Seed: 7})
			var s countSink
			net.Register("srv", s.handle)
			net.Register("cli", nil)
			if err := net.Send("cli", "srv", []byte("before")); err != nil {
				t.Fatalf("pre-crash send: %v", err)
			}
			net.Run()
			if s.count() != 1 {
				t.Fatalf("pre-crash delivered %d, want 1", s.count())
			}

			// Crash now, restart 60ms later.
			now := net.Now()
			net.ApplyFaults(faults.NewPlan().Crash("srv", now, now+60*time.Millisecond))
			deadline := time.Now().Add(2 * time.Second)
			for !net.CrashedNow("srv") {
				if time.Now().After(deadline) {
					t.Fatal("srv never went down")
				}
				time.Sleep(time.Millisecond)
			}
			err := net.Send("cli", "srv", []byte("during"))
			if !errors.Is(err, faults.ErrNodeDown) {
				t.Fatalf("send to crashed node: err = %v, want ErrNodeDown", err)
			}
			if net.FaultDrops() == 0 {
				t.Fatal("crashed-node send not counted as fault drop")
			}

			for net.CrashedNow("srv") {
				if time.Now().After(deadline) {
					t.Fatal("srv never restarted")
				}
				time.Sleep(time.Millisecond)
			}
			// Writers re-dial with backoff; a post-restart send must land.
			var delivered bool
			for i := 0; i < 20 && !delivered; i++ {
				if err := net.Send("cli", "srv", []byte("after")); err != nil {
					t.Fatalf("post-restart send: %v", err)
				}
				net.Run()
				delivered = s.count() >= 2
			}
			if !delivered {
				t.Fatalf("no delivery after restart (delivered %d)", s.count())
			}
		})
	}
}

// TestTCPWriterReconnectsAfterReset drives the canonical reconnect
// path: an injected loss poisons the stream (partial frame + RST), the
// writer re-dials with backoff, and the reconnect is counted.
func TestTCPWriterReconnectsAfterReset(t *testing.T) {
	const seed = int64(5)
	net := newTest(t, Options{Mode: ModeTCP, Seed: seed})
	var s countSink
	net.Register("srv", s.handle)
	net.Register("cli", nil)
	if err := net.Send("cli", "srv", []byte("establish")); err != nil {
		t.Fatalf("send: %v", err)
	}
	net.Run()
	net.ApplyFaults(faults.NewPlan().Loss("cli", "srv", 1.0, 0, 0))
	want := 0
	for i := 0; i < 32; i++ {
		// Every in-window send is a deterministic injected drop whose
		// poison resets the stream; the next surviving frame re-dials.
		if faults.LossDraw(seed, "cli", "srv", uint64(i)) >= 1.0 {
			want++
		}
		if err := net.Send("cli", "srv", []byte("doomed")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	net.Run()
	if want != 0 {
		t.Fatalf("loss 1.0 let %d frames through", want)
	}
	// The window never clears (until=0), so re-deliveries need a fresh
	// link: a second plan cannot remove faults, but sends from another
	// source still traverse the same destination queue and stream.
	if err := net.Send("other", "srv", []byte("revive")); err != nil {
		t.Fatalf("revive send: %v", err)
	}
	net.Run()
	deadline := time.Now().Add(2 * time.Second)
	for net.Reconnects() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect counted after %d poison resets", 32)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCrashCancelsOwnedTimers(t *testing.T) {
	net := newTest(t, Options{Mode: ModeTCP, Seed: 7})
	var fired sync.Map
	var s countSink
	net.Register("srv", func(view transport.Transport, _ transport.Message) {
		s.handle(view, transport.Message{})
		// The handler arms an owned timer; the node crashes before it
		// fires, so it must be cancelled (simnet cancels the crashed
		// owner's queue events).
		view.After(50*time.Millisecond, func() { fired.Store("srv-timer", true) })
	})
	net.Register("cli", nil)
	if err := net.Send("cli", "srv", []byte("arm")); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Wait for the handler (and its After) before crashing.
	deadline := time.Now().Add(2 * time.Second)
	for s.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never ran")
		}
		time.Sleep(time.Millisecond)
	}
	net.ApplyFaults(faults.NewPlan().Crash("srv", net.Now(), 0))
	net.Run() // quiesces: the cancelled timer releases its pending unit
	if _, ok := fired.Load("srv-timer"); ok {
		t.Fatal("timer armed before its owner crashed fired anyway")
	}
}

func TestPartitionDropsSilently(t *testing.T) {
	net := newTest(t, Options{Mode: ModeTCP, Seed: 7})
	var s countSink
	net.Register("srv", s.handle)
	net.Register("a", nil)
	net.Register("b", nil)
	net.ApplyFaults(faults.NewPlan().PartitionOneWay("a", "srv", 0, 0))
	for i := 0; i < 5; i++ {
		if err := net.Send("a", "srv", []byte("cut")); err != nil {
			t.Fatalf("partitioned send errored (partitions are silent): %v", err)
		}
		if err := net.Send("b", "srv", []byte("ok")); err != nil {
			t.Fatalf("clear send: %v", err)
		}
	}
	net.Run()
	if got := s.count(); got != 5 {
		t.Fatalf("delivered %d, want only the 5 un-partitioned", got)
	}
	if net.FaultDrops() != 5 {
		t.Fatalf("fault drops %d, want 5", net.FaultDrops())
	}
}

// TestInjectedLossMatchesLossDraw pins the cross-transport determinism
// contract: which of N sends die under burst loss is exactly the
// LossDraw stream, per directed link, regardless of mode.
func TestInjectedLossMatchesLossDraw(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode Mode
	}{
		{"tcp", ModeTCP},
		{"udp", ModeUDP},
		{"http", ModeHTTP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, rate, seed = 64, 0.3, int64(14)
			net := newTest(t, Options{Mode: tc.mode, Seed: seed})
			var s countSink
			net.Register("srv", s.handle)
			net.Register("cli", nil)
			net.ApplyFaults(faults.NewPlan().Loss("cli", "srv", rate, 0, 0))
			want := 0
			for i := 0; i < n; i++ {
				if faults.LossDraw(seed, "cli", "srv", uint64(i)) >= rate {
					want++
				}
				if err := net.Send("cli", "srv", []byte(fmt.Sprintf("m%02d", i))); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			net.Run()
			if got := s.count(); got != want {
				t.Fatalf("delivered %d, want %d (deterministic loss draw)", got, want)
			}
			if net.FaultDrops() != uint64(n-want) {
				t.Fatalf("fault drops %d, want %d", net.FaultDrops(), n-want)
			}
		})
	}
}

func TestInjectedLossLabeledApartFromOrganic(t *testing.T) {
	net := newTest(t, Options{Mode: ModeTCP, Seed: 1})
	reg := telemetry.NewMetrics()
	tel := telemetry.New("nettransport-faults", false, reg)
	net.Instrument(tel)
	var s countSink
	net.Register("srv", s.handle)
	net.Register("cli", nil)
	net.ApplyFaults(faults.NewPlan().Loss("cli", "srv", 1.0, 0, 0))
	for i := 0; i < 8; i++ {
		if err := net.Send("cli", "srv", []byte("doomed")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	net.Run()
	var injectedLost, faultDrops float64
	for _, sv := range reg.CounterSeries(telemetry.MetricTransportLost) {
		if !strings.HasPrefix(sv.Label("reason"), "injected:") {
			t.Fatalf("organic loss series %v under a pure-injected plan", sv.Labels)
		}
		injectedLost += sv.Value
	}
	for _, sv := range reg.CounterSeries(telemetry.MetricTransportFaultDrops) {
		faultDrops += sv.Value
	}
	if injectedLost != 8 || faultDrops != 8 {
		t.Fatalf("injected lost %v, fault drops %v, want 8 and 8", injectedLost, faultDrops)
	}
}

func TestLatencySpikeDelaysDelivery(t *testing.T) {
	net := newTest(t, Options{Mode: ModeTCP, Seed: 1})
	var s countSink
	net.Register("srv", s.handle)
	net.Register("cli", nil)
	const extra = 60 * time.Millisecond
	net.ApplyFaults(faults.NewPlan().LatencySpike("cli", "srv", extra, 0, 0))
	start := time.Now()
	if err := net.Send("cli", "srv", []byte("slow")); err != nil {
		t.Fatalf("send: %v", err)
	}
	net.Run()
	if elapsed := time.Since(start); elapsed < extra {
		t.Fatalf("delivery took %v, want >= %v spike", elapsed, extra)
	}
	if s.count() != 1 {
		t.Fatalf("delivered %d, want 1 (spikes delay, never drop)", s.count())
	}
}

func TestSendShedsUnderOverloadTyped(t *testing.T) {
	// A tiny writer queue and a destination that cannot drain (crashed
	// from t=0 is not usable here — crashed sends fail fast — so instead
	// partition the writer's wire by pointing at a spiked, depth-1
	// queue).
	net := newTest(t, Options{Mode: ModeTCP, Seed: 1, OutDepth: 1, ShedAfter: 5 * time.Millisecond})
	var s countSink
	net.Register("srv", s.handle)
	net.Register("cli", nil)
	// A huge head-of-line spike parks the single writer, so the depth-1
	// queue fills and later sends must shed.
	net.ApplyFaults(faults.NewPlan().LatencySpike("cli", "srv", 500*time.Millisecond, 0, 0))
	var shed int
	for i := 0; i < 8; i++ {
		err := net.Send("cli", "srv", []byte("burst"))
		if errors.Is(err, faults.ErrShed) {
			shed++
		} else if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("no send shed despite full depth-1 queue and 5ms ShedAfter")
	}
	if net.Shed() != uint64(shed) {
		t.Fatalf("Shed() = %d, want %d (every shed counted)", net.Shed(), shed)
	}
	net.Run()
}

// TestCloseNoGoroutineLeakMidFlight is the regression for shutdown
// hygiene: Close during a chaos storm of in-flight sends, owned timers,
// and a crash window must return with every transport goroutine gone
// and subsequent sends failing typed with ErrClosed.
func TestCloseNoGoroutineLeakMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, tc := range []struct {
		name string
		mode Mode
	}{
		{"tcp", ModeTCP},
		{"udp", ModeUDP},
		{"http", ModeHTTP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := New(Options{Mode: tc.mode, Seed: 3, Workers: 4, OutDepth: 64, ShedAfter: 2 * time.Millisecond})
			net.Register("srv", func(view transport.Transport, _ transport.Message) {
				view.After(10*time.Millisecond, func() {})
			})
			for i := 0; i < 8; i++ {
				net.Register(transport.Addr(fmt.Sprintf("c%d", i)), nil)
			}
			net.ApplyFaults(faults.NewPlan().
				Loss("c0", "srv", 0.5, 0, 0).
				LatencySpike("c1", "srv", 20*time.Millisecond, 0, 0).
				Crash("srv", 30*time.Millisecond, 60*time.Millisecond))
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 400; i++ {
					src := transport.Addr(fmt.Sprintf("c%d", i%8))
					if err := net.Send(src, "srv", []byte("mid-flight")); err != nil {
						// Shed, crashed, closed: all fine — typed, never a hang.
						continue
					}
				}
			}()
			time.Sleep(15 * time.Millisecond) // mid-storm
			if err := net.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			<-done
			if err := net.Send("c0", "srv", []byte("late")); !errors.Is(err, ErrClosed) {
				t.Fatalf("send after Close: err = %v, want ErrClosed", err)
			}
		})
	}
	// Crash timers may still be parked in the runtime; give transitions
	// (which see closed and bail) a moment, then require the goroutine
	// count back at baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
