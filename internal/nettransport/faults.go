// Fault injection for the real loopback transport.
//
// The plan grammar lives in internal/faults; this file is nettransport's
// enforcement of it on a wall clock. Link faults (partition, burst loss,
// latency spike) are evaluated at the frame-codec boundary in SendTraced
// — the merged plan sits behind one atomic pointer the send path loads
// lock-free. Crash windows become wall-clock timers that take the node's
// endpoint down and bring it back up:
//
//   - Down: the listener (or server, or socket) closes, so new dials and
//     datagrams find a dead port; the inbox is drained with every queued
//     message counted as an injected "crash" drop; the node's crash
//     epoch advances, cancelling owned timers armed before the crash.
//     Already-accepted TCP streams stay open — in-flight frames on them
//     die at delivery time instead, which keeps the pending-work
//     accounting exact (the simulator's analogue is dropping inbound to
//     a crashed node at its delivery event).
//   - Up: the recorded port is re-bound with capped-jittered backoff
//     (ports linger in TIME_WAIT and kernels take their time), and only
//     a successful rebind marks the node up — a node that cannot restart
//     stays down rather than half-up.
//
// Peers recover on their own: TCP writers re-dial with the same backoff
// policy and count a reconnect when a previously-established stream
// comes back.
package nettransport

import (
	"sort"
	"time"

	"decoupling/internal/faults"
	"decoupling/internal/transport"
)

var _ faults.Injector = (*Net)(nil)

// ApplyFaults overlays a plan on live traffic. Link faults take effect
// immediately (the send path window-queries the merged plan against the
// transport's elapsed clock); crash/restart transitions are armed as
// wall-clock timers relative to now, clamped to the present so applying
// a plan mid-run never schedules into the past. May be called
// repeatedly; plans merge.
func (t *Net) ApplyFaults(p *faults.Plan) {
	if p.Empty() {
		return
	}
	t.transMu.Lock()
	merged := faults.NewPlan().Merge(t.plan.Load()).Merge(p)
	t.plan.Store(merged)
	t.transMu.Unlock()
	now := t.Now()
	for _, f := range p.Faults() {
		if f.Kind != faults.FaultCrash {
			continue
		}
		for _, addr := range t.expandNodes(f.Node) {
			addr := addr
			time.AfterFunc(max(0, f.From-now), func() { t.transition(addr, true) })
			if f.Until > 0 {
				time.AfterFunc(max(0, f.Until-now), func() { t.transition(addr, false) })
			}
		}
	}
}

// expandNodes resolves a node pattern against registered nodes, sorted
// for deterministic transition order.
func (t *Net) expandNodes(pat transport.Addr) []transport.Addr {
	if pat != faults.Wildcard {
		return []transport.Addr{pat}
	}
	t.mu.Lock()
	addrs := make([]transport.Addr, 0, len(t.nodes))
	for a := range t.nodes {
		addrs = append(addrs, a)
	}
	t.mu.Unlock()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// transition flips one node's crash state. Serialized under transMu
// against other transitions and against Close, which is what lets a
// restart add reader goroutines without racing wg.Wait.
func (t *Net) transition(addr transport.Addr, down bool) {
	t.transMu.Lock()
	defer t.transMu.Unlock()
	if t.closed.Load() {
		return
	}
	t.mu.Lock()
	n := t.nodes[addr]
	t.mu.Unlock()
	if n == nil || n.down.Load() == down {
		return
	}
	if down {
		// Epoch first: a timer arming concurrently either sees down and
		// skips, or captures the old epoch and is cancelled at fire time.
		n.epoch.Add(1)
		n.down.Store(true)
		n.endpointMu.Lock()
		switch t.opts.Mode {
		case ModeUDP:
			if n.udpConn != nil {
				n.udpConn.Close()
				n.udpConn = nil
			}
		case ModeHTTP:
			if n.httpSrv != nil {
				n.httpSrv.Close()
				n.httpSrv = nil
			}
		default:
			if n.tcpLn != nil {
				n.tcpLn.Close()
				n.tcpLn = nil
			}
		}
		n.endpointMu.Unlock()
		t.drainInbox(n)
		return
	}
	// Restart: rebind the recorded endpoint so peers' dial targets stay
	// valid, with backoff for ports the kernel has not released yet.
	n.endpointMu.Lock()
	target := n.dialTo
	if t.opts.Mode == ModeUDP && n.udpAddr != nil {
		target = n.udpAddr.String()
	}
	n.endpointMu.Unlock()
	seed := uint64(t.opts.Seed) ^ 0xbd // decorrelate from writer dials
	for attempt := 0; attempt < dialRetry.MaxAttempts; attempt++ {
		if attempt > 0 && !t.sleepOrStop(dialRetry.Backoff(seed, attempt)) {
			return
		}
		if t.bind(n, target) == nil {
			n.down.Store(false)
			return
		}
	}
	// Rebind exhausted: the node stays down (sends keep failing with
	// ErrNodeDown) rather than flapping half-up with no endpoint.
}

// drainInbox empties a freshly-crashed node's queue: queued datagrams
// are injected "crash" drops, queued timers are cancelled outright. The
// dispatcher may be draining concurrently; it applies the same rules.
func (t *Net) drainInbox(n *node) {
	for {
		select {
		case it := <-n.inbox:
			if it.fire != nil {
				t.finish(1)
			} else {
				t.dropInjected(1, "crash")
			}
		default:
			return
		}
	}
}

// CrashedNow reports whether node is currently down (for tests;
// protocols should just observe Send errors).
func (t *Net) CrashedNow(addr transport.Addr) bool {
	t.mu.Lock()
	n := t.nodes[addr]
	t.mu.Unlock()
	return n != nil && n.isDown()
}

// FaultDrops returns the all-time count of frames dropped by injected
// faults (crashes, partitions, burst loss).
func (t *Net) FaultDrops() uint64 { return t.faultDrops.Load() }

// Shed returns the all-time count of frames shed under overload.
func (t *Net) Shed() uint64 { return t.shed.Load() }

// Reconnects returns the all-time count of writer streams re-established
// after a reset or a destination restart.
func (t *Net) Reconnects() uint64 { return t.reconnects.Load() }
