package nettransport

import (
	"encoding/binary"
	"errors"

	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// Wire framing. Every datagram the real transport moves — whether as a
// UDP payload, a span of a TCP stream, or an HTTP POST body — is a
// sequence of length-prefixed frames:
//
//	v1: [magic 1][version=1][srcLen 1][dstLen 1][payloadLen 4 BE]
//	    [src srcLen][dst dstLen][payload payloadLen]
//
//	v2: [magic 1][version=2][srcLen 1][dstLen 1][payloadLen 4 BE]
//	    [extLen 1][ext extLen]
//	    [src srcLen][dst dstLen][payload payloadLen]
//
// Version 2 adds a variable-length trace extension between the common
// header and the addresses: today it carries the 24-byte wiretrace
// context (trace ID + parent span ID); extLen may grow up to
// MaxTraceExt so decoders tolerate future additions by ignoring bytes
// they don't understand. The extension rides out-of-band of the
// payload — payload bytes (and therefore the ledger's wire-byte
// handles) are identical whether or not a frame is traced. Encoders
// emit v1 whenever no context is attached, so untraced traffic is
// byte-identical to the old wire format and old decoders interoperate.
//
// Batching is concatenation: a sender packs as many frames as fit its
// batch budget into one write, and DecodeFrame consumes one frame and
// returns the rest. The format is deliberately self-describing and
// bounded so a truncated or hostile byte stream is rejected, never
// sliced out of range — FuzzWireFrame holds that property across both
// versions and arbitrary extension bytes.
const (
	frameMagic     byte = 0xDC
	frameVersion   byte = 1
	frameVersionV2 byte = 2
	frameHeader         = 8
	// frameHeaderV2 includes the extension-length byte; the extension
	// itself follows.
	frameHeaderV2 = frameHeader + 1

	// MaxAddrLen bounds either address (the length fields are one byte).
	MaxAddrLen = 255
	// MaxFramePayload bounds a single frame's payload; anything larger
	// is a corrupt length prefix, not a legitimate datagram.
	MaxFramePayload = 4 << 20
	// MaxTraceExt bounds a v2 trace extension. Larger means a corrupt
	// length byte, not a legitimate extension.
	MaxTraceExt = 64
)

// Framing errors. Decoders distinguish truncation (wait for more bytes
// on a stream) from structural corruption (drop the connection).
var (
	ErrFrameMagic     = errors.New("nettransport: bad frame magic")
	ErrFrameVersion   = errors.New("nettransport: unsupported frame version")
	ErrFrameTruncated = errors.New("nettransport: truncated frame")
	ErrFrameOversize  = errors.New("nettransport: frame exceeds size bounds")
	// ErrTraceExtOversize rejects a v2 extension length beyond
	// MaxTraceExt; ErrTraceExtTruncated rejects one too short to hold a
	// trace context.
	ErrTraceExtOversize  = errors.New("nettransport: trace extension exceeds size bounds")
	ErrTraceExtTruncated = errors.New("nettransport: trace extension truncated")
)

// AppendFrame appends the encoded frame for msg to dst and returns the
// extended slice. A message carrying a trace context encodes as v2;
// otherwise the frame is bit-identical to the v1 format.
func AppendFrame(dst []byte, msg transport.Message) ([]byte, error) {
	if len(msg.Src) > MaxAddrLen || len(msg.Dst) > MaxAddrLen {
		return dst, ErrFrameOversize
	}
	if len(msg.Payload) > MaxFramePayload {
		return dst, ErrFrameOversize
	}
	version := frameVersion
	if !msg.Trace.IsZero() {
		version = frameVersionV2
	}
	dst = append(dst, frameMagic, version, byte(len(msg.Src)), byte(len(msg.Dst)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Payload)))
	if version == frameVersionV2 {
		dst = append(dst, byte(wiretrace.EncodedLen))
		dst = msg.Trace.Encode(dst)
	}
	dst = append(dst, msg.Src...)
	dst = append(dst, msg.Dst...)
	return append(dst, msg.Payload...), nil
}

// headerLen returns the number of bytes a stream reader must have
// before FrameLen can size the full frame: the common header, plus the
// extension-length byte for v2. Returns frameHeader when b is too
// short to tell (read that much and ask again).
func headerLen(b []byte) int {
	if len(b) >= 2 && b[0] == frameMagic && b[1] == frameVersionV2 {
		return frameHeaderV2
	}
	return frameHeader
}

// FrameLen returns the total encoded length of a frame whose header is
// at the start of b, or 0 if too few bytes are present to size it
// (headerLen bytes: 8 for v1, 9 for v2). It validates nothing beyond
// having a complete header; callers use it to size stream reads before
// DecodeFrame validates.
func FrameLen(b []byte) int {
	need := headerLen(b)
	if len(b) < need {
		return 0
	}
	n := need + int(b[2]) + int(b[3]) + int(binary.BigEndian.Uint32(b[4:8]))
	if need == frameHeaderV2 {
		n += int(b[8]) // the extension body follows the length byte
	}
	return n
}

// DecodeFrame consumes one frame from the front of b, returning the
// decoded message and the remaining bytes. The returned payload slices
// b (decoders copy if they keep it). Truncated input returns
// ErrFrameTruncated; corrupt magic, version, or an oversize length
// prefix return their structural errors; a v2 trace extension that is
// oversize or too short for a context returns its typed error. A v2
// frame's context lands in msg.Trace; extension bytes beyond the
// context are ignored (forward compatibility).
func DecodeFrame(b []byte) (transport.Message, []byte, error) {
	var msg transport.Message
	if len(b) < frameHeader {
		return msg, b, ErrFrameTruncated
	}
	if b[0] != frameMagic {
		return msg, b, ErrFrameMagic
	}
	if b[1] != frameVersion && b[1] != frameVersionV2 {
		return msg, b, ErrFrameVersion
	}
	srcLen, dstLen := int(b[2]), int(b[3])
	payloadLen := int(binary.BigEndian.Uint32(b[4:8]))
	if payloadLen > MaxFramePayload {
		return msg, b, ErrFrameOversize
	}
	body := b[frameHeader:]
	total := frameHeader + srcLen + dstLen + payloadLen
	if b[1] == frameVersionV2 {
		if len(b) < frameHeaderV2 {
			return msg, b, ErrFrameTruncated
		}
		extLen := int(b[8])
		if extLen > MaxTraceExt {
			return msg, b, ErrTraceExtOversize
		}
		if extLen < wiretrace.EncodedLen {
			return msg, b, ErrTraceExtTruncated
		}
		total += 1 + extLen
		if len(b) < total {
			return msg, b, ErrFrameTruncated
		}
		ext := b[frameHeaderV2 : frameHeaderV2+extLen]
		ctx, err := wiretrace.DecodeContext(ext)
		if err != nil {
			return msg, b, ErrTraceExtTruncated
		}
		msg.Trace = ctx
		body = b[frameHeaderV2+extLen:]
	}
	if len(b) < total {
		return msg, b, ErrFrameTruncated
	}
	msg.Src = transport.Addr(body[:srcLen])
	msg.Dst = transport.Addr(body[srcLen : srcLen+dstLen])
	msg.Payload = body[srcLen+dstLen : srcLen+dstLen+payloadLen]
	return msg, b[total:], nil
}
