package nettransport

import (
	"encoding/binary"
	"errors"

	"decoupling/internal/transport"
)

// Wire framing. Every datagram the real transport moves — whether as a
// UDP payload, a span of a TCP stream, or an HTTP POST body — is a
// sequence of length-prefixed frames:
//
//	[magic 1][version 1][srcLen 1][dstLen 1][payloadLen 4 BE]
//	[src srcLen][dst dstLen][payload payloadLen]
//
// Batching is concatenation: a sender packs as many frames as fit its
// batch budget into one write, and DecodeFrame consumes one frame and
// returns the rest. The format is deliberately self-describing and
// bounded so a truncated or hostile byte stream is rejected, never
// sliced out of range — FuzzWireFrame holds that property.
const (
	frameMagic   byte = 0xDC
	frameVersion byte = 1
	frameHeader       = 8

	// MaxAddrLen bounds either address (the length fields are one byte).
	MaxAddrLen = 255
	// MaxFramePayload bounds a single frame's payload; anything larger
	// is a corrupt length prefix, not a legitimate datagram.
	MaxFramePayload = 4 << 20
)

// Framing errors. Decoders distinguish truncation (wait for more bytes
// on a stream) from structural corruption (drop the connection).
var (
	ErrFrameMagic     = errors.New("nettransport: bad frame magic")
	ErrFrameVersion   = errors.New("nettransport: unsupported frame version")
	ErrFrameTruncated = errors.New("nettransport: truncated frame")
	ErrFrameOversize  = errors.New("nettransport: frame exceeds size bounds")
)

// AppendFrame appends the encoded frame for msg to dst and returns the
// extended slice.
func AppendFrame(dst []byte, msg transport.Message) ([]byte, error) {
	if len(msg.Src) > MaxAddrLen || len(msg.Dst) > MaxAddrLen {
		return dst, ErrFrameOversize
	}
	if len(msg.Payload) > MaxFramePayload {
		return dst, ErrFrameOversize
	}
	dst = append(dst, frameMagic, frameVersion, byte(len(msg.Src)), byte(len(msg.Dst)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Payload)))
	dst = append(dst, msg.Src...)
	dst = append(dst, msg.Dst...)
	return append(dst, msg.Payload...), nil
}

// FrameLen returns the total encoded length of a frame whose header is
// at the start of b, or 0 if fewer than frameHeader bytes are present.
// It validates nothing beyond having a complete header; callers use it
// to size stream reads before DecodeFrame validates.
func FrameLen(b []byte) int {
	if len(b) < frameHeader {
		return 0
	}
	return frameHeader + int(b[2]) + int(b[3]) + int(binary.BigEndian.Uint32(b[4:8]))
}

// DecodeFrame consumes one frame from the front of b, returning the
// decoded message and the remaining bytes. The returned payload slices
// b (decoders copy if they keep it). Truncated input returns
// ErrFrameTruncated; corrupt magic, version, or an oversize length
// prefix return their structural errors.
func DecodeFrame(b []byte) (transport.Message, []byte, error) {
	var msg transport.Message
	if len(b) < frameHeader {
		return msg, b, ErrFrameTruncated
	}
	if b[0] != frameMagic {
		return msg, b, ErrFrameMagic
	}
	if b[1] != frameVersion {
		return msg, b, ErrFrameVersion
	}
	srcLen, dstLen := int(b[2]), int(b[3])
	payloadLen := int(binary.BigEndian.Uint32(b[4:8]))
	if payloadLen > MaxFramePayload {
		return msg, b, ErrFrameOversize
	}
	total := frameHeader + srcLen + dstLen + payloadLen
	if len(b) < total {
		return msg, b, ErrFrameTruncated
	}
	rest := b[frameHeader:]
	msg.Src = transport.Addr(rest[:srcLen])
	msg.Dst = transport.Addr(rest[srcLen : srcLen+dstLen])
	msg.Payload = rest[srcLen+dstLen : srcLen+dstLen+payloadLen]
	return msg, b[total:], nil
}
