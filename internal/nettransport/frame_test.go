package nettransport

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"decoupling/internal/transport"
)

func mustFrame(t *testing.T, msg transport.Message) []byte {
	t.Helper()
	b, err := AppendFrame(nil, msg)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []transport.Message{
		{Src: "a", Dst: "b", Payload: []byte("hello")},
		{Src: "", Dst: "sink", Payload: nil},
		{Src: "mix00", Dst: "mix01", Payload: bytes.Repeat([]byte{0xDC}, 4096)},
		{Src: transport.Addr(strings.Repeat("s", MaxAddrLen)), Dst: transport.Addr(strings.Repeat("d", MaxAddrLen)), Payload: []byte{0}},
	}
	var batch []byte
	for _, m := range msgs {
		var err error
		batch, err = AppendFrame(batch, m)
		if err != nil {
			t.Fatalf("AppendFrame(%q->%q): %v", m.Src, m.Dst, err)
		}
	}
	rest := batch
	for i, want := range msgs {
		var got transport.Message
		var err error
		got, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: DecodeFrame: %v", i, err)
		}
		if got.Src != want.Src || got.Dst != want.Dst || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch: got %+v want %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes after decoding all frames: %d", len(rest))
	}
}

func TestFrameTruncation(t *testing.T) {
	frame := mustFrame(t, transport.Message{Src: "alpha", Dst: "beta", Payload: []byte("payload bytes")})
	for cut := 0; cut < len(frame); cut++ {
		_, rest, err := DecodeFrame(frame[:cut])
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("prefix length %d: got err %v, want ErrFrameTruncated", cut, err)
		}
		if len(rest) != cut {
			t.Fatalf("prefix length %d: truncated decode consumed bytes", cut)
		}
	}
}

func TestFrameStructuralErrors(t *testing.T) {
	valid := mustFrame(t, transport.Message{Src: "a", Dst: "b", Payload: []byte("x")})

	bad := append([]byte(nil), valid...)
	bad[0] = 0x00
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameMagic) {
		t.Fatalf("corrupt magic: got %v, want ErrFrameMagic", err)
	}

	bad = append([]byte(nil), valid...)
	bad[1] = 99
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("corrupt version: got %v, want ErrFrameVersion", err)
	}

	// A hostile length prefix claiming a multi-gigabyte payload must be
	// rejected as oversize, not waited for.
	bad = append([]byte(nil), valid...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize length prefix: got %v, want ErrFrameOversize", err)
	}
}

func TestFrameEncodeBounds(t *testing.T) {
	if _, err := AppendFrame(nil, transport.Message{Src: transport.Addr(strings.Repeat("s", MaxAddrLen+1)), Dst: "d"}); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize src: got %v, want ErrFrameOversize", err)
	}
	if _, err := AppendFrame(nil, transport.Message{Src: "s", Dst: "d", Payload: make([]byte, MaxFramePayload+1)}); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize payload: got %v, want ErrFrameOversize", err)
	}
}

func TestFrameLenMatchesEncoding(t *testing.T) {
	frame := mustFrame(t, transport.Message{Src: "src", Dst: "dst", Payload: []byte("abc")})
	if got := FrameLen(frame); got != len(frame) {
		t.Fatalf("FrameLen = %d, want %d", got, len(frame))
	}
	if got := FrameLen(frame[:frameHeader-1]); got != 0 {
		t.Fatalf("FrameLen on short header = %d, want 0", got)
	}
}

// FuzzWireFrame holds the decoder's core safety contract over arbitrary
// bytes: never panic, never slice out of range, make progress on every
// successful decode, and stay canonical — re-encoding a decoded frame
// reproduces exactly the bytes consumed.
func FuzzWireFrame(f *testing.F) {
	seed := [][]byte{
		mustFrameF(f, transport.Message{Src: "a", Dst: "b", Payload: []byte("hello")}),
		mustFrameF(f, transport.Message{Src: "", Dst: "", Payload: nil}),
		mustFrameF(f, transport.Message{Src: "client000017", Dst: "Resolver", Payload: bytes.Repeat([]byte("q"), 512)}),
		{frameMagic, frameVersion, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}, // hostile length
		{frameMagic, 2, 0, 0, 0, 0, 0, 0},                        // future version
		{0x00},
		nil,
	}
	// Two concatenated frames exercise the rest-slice path.
	double := append(append([]byte(nil), seed[0]...), seed[2]...)
	seed = append(seed, double)
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			msg, next, err := DecodeFrame(rest)
			if err != nil {
				// Errors must not consume input.
				if len(next) != len(rest) {
					t.Fatalf("decode error %v consumed %d bytes", err, len(rest)-len(next))
				}
				return
			}
			consumed := rest[:len(rest)-len(next)]
			reenc, encErr := AppendFrame(nil, msg)
			if encErr != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", encErr)
			}
			if !bytes.Equal(reenc, consumed) {
				t.Fatalf("decode/encode not canonical:\n consumed %x\n re-enc   %x", consumed, reenc)
			}
			if len(next) >= len(rest) {
				t.Fatalf("successful decode made no progress")
			}
			rest = next
			if len(rest) == 0 {
				return
			}
		}
	})
}

func mustFrameF(f *testing.F, msg transport.Message) []byte {
	f.Helper()
	b, err := AppendFrame(nil, msg)
	if err != nil {
		f.Fatalf("AppendFrame: %v", err)
	}
	return b
}
