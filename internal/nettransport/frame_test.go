package nettransport

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// testContext builds a deterministic non-zero trace context.
func testContext(seed byte) wiretrace.Context {
	var ctx wiretrace.Context
	for i := range ctx.Trace {
		ctx.Trace[i] = seed + byte(i)
	}
	for i := range ctx.Span {
		ctx.Span[i] = seed ^ byte(0xA0+i)
	}
	return ctx
}

func mustFrame(t *testing.T, msg transport.Message) []byte {
	t.Helper()
	b, err := AppendFrame(nil, msg)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []transport.Message{
		{Src: "a", Dst: "b", Payload: []byte("hello")},
		{Src: "", Dst: "sink", Payload: nil},
		{Src: "mix00", Dst: "mix01", Payload: bytes.Repeat([]byte{0xDC}, 4096)},
		{Src: transport.Addr(strings.Repeat("s", MaxAddrLen)), Dst: transport.Addr(strings.Repeat("d", MaxAddrLen)), Payload: []byte{0}},
	}
	var batch []byte
	for _, m := range msgs {
		var err error
		batch, err = AppendFrame(batch, m)
		if err != nil {
			t.Fatalf("AppendFrame(%q->%q): %v", m.Src, m.Dst, err)
		}
	}
	rest := batch
	for i, want := range msgs {
		var got transport.Message
		var err error
		got, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: DecodeFrame: %v", i, err)
		}
		if got.Src != want.Src || got.Dst != want.Dst || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch: got %+v want %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes after decoding all frames: %d", len(rest))
	}
}

func TestFrameTruncation(t *testing.T) {
	frame := mustFrame(t, transport.Message{Src: "alpha", Dst: "beta", Payload: []byte("payload bytes")})
	for cut := 0; cut < len(frame); cut++ {
		_, rest, err := DecodeFrame(frame[:cut])
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("prefix length %d: got err %v, want ErrFrameTruncated", cut, err)
		}
		if len(rest) != cut {
			t.Fatalf("prefix length %d: truncated decode consumed bytes", cut)
		}
	}
}

func TestFrameStructuralErrors(t *testing.T) {
	valid := mustFrame(t, transport.Message{Src: "a", Dst: "b", Payload: []byte("x")})

	bad := append([]byte(nil), valid...)
	bad[0] = 0x00
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameMagic) {
		t.Fatalf("corrupt magic: got %v, want ErrFrameMagic", err)
	}

	bad = append([]byte(nil), valid...)
	bad[1] = 99
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("corrupt version: got %v, want ErrFrameVersion", err)
	}

	// A hostile length prefix claiming a multi-gigabyte payload must be
	// rejected as oversize, not waited for.
	bad = append([]byte(nil), valid...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize length prefix: got %v, want ErrFrameOversize", err)
	}
}

func TestFrameEncodeBounds(t *testing.T) {
	if _, err := AppendFrame(nil, transport.Message{Src: transport.Addr(strings.Repeat("s", MaxAddrLen+1)), Dst: "d"}); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize src: got %v, want ErrFrameOversize", err)
	}
	if _, err := AppendFrame(nil, transport.Message{Src: "s", Dst: "d", Payload: make([]byte, MaxFramePayload+1)}); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize payload: got %v, want ErrFrameOversize", err)
	}
}

func TestFrameLenMatchesEncoding(t *testing.T) {
	frame := mustFrame(t, transport.Message{Src: "src", Dst: "dst", Payload: []byte("abc")})
	if got := FrameLen(frame); got != len(frame) {
		t.Fatalf("FrameLen = %d, want %d", got, len(frame))
	}
	if got := FrameLen(frame[:frameHeader-1]); got != 0 {
		t.Fatalf("FrameLen on short header = %d, want 0", got)
	}
}

func TestFrameV2RoundTrip(t *testing.T) {
	msgs := []transport.Message{
		{Src: "a", Dst: "b", Payload: []byte("hello"), Trace: testContext(1)},
		{Src: "client", Dst: "proxy", Payload: nil, Trace: testContext(9)},
	}
	var batch []byte
	for _, m := range msgs {
		var err error
		batch, err = AppendFrame(batch, m)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	if batch[1] != frameVersionV2 {
		t.Fatalf("traced frame encoded version %d, want %d", batch[1], frameVersionV2)
	}
	rest := batch
	for i, want := range msgs {
		var got transport.Message
		var err error
		got, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Trace != want.Trace {
			t.Fatalf("frame %d: trace context mismatch: got %+v want %+v", i, got.Trace, want.Trace)
		}
		if got.Src != want.Src || got.Dst != want.Dst || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}
}

// TestFrameV1BackwardCompat holds the version-negotiation contract:
// an untraced message encodes bit-identically to the pre-extension v1
// format, and old-version frames (hand-built the way a pre-v2 encoder
// would) still decode with a zero trace context.
func TestFrameV1BackwardCompat(t *testing.T) {
	frame := mustFrame(t, transport.Message{Src: "old", Dst: "peer", Payload: []byte("legacy")})
	if frame[1] != frameVersion {
		t.Fatalf("untraced frame encoded version %d, want v1", frame[1])
	}
	// Hand-build the v1 wire image an old encoder produces.
	legacy := []byte{frameMagic, frameVersion, 3, 4, 0, 0, 0, 6}
	legacy = append(legacy, []byte("old")...)
	legacy = append(legacy, []byte("peer")...)
	legacy = append(legacy, []byte("legacy")...)
	if !bytes.Equal(frame, legacy) {
		t.Fatalf("untraced encoding is not bit-identical to v1:\n got  %x\n want %x", frame, legacy)
	}
	msg, rest, err := DecodeFrame(legacy)
	if err != nil {
		t.Fatalf("decoding legacy v1 frame: %v", err)
	}
	if !msg.Trace.IsZero() {
		t.Fatalf("legacy frame decoded a non-zero trace context: %+v", msg.Trace)
	}
	if len(rest) != 0 || msg.Src != "old" || string(msg.Payload) != "legacy" {
		t.Fatalf("legacy decode mismatch: %+v rest=%d", msg, len(rest))
	}
}

// v2Frame hand-builds a v2 frame with an arbitrary extension length
// byte and body, to probe the typed extension errors.
func v2Frame(extLen int, ext []byte) []byte {
	b := []byte{frameMagic, frameVersionV2, 1, 1, 0, 0, 0, 2, byte(extLen)}
	b = append(b, ext...)
	b = append(b, 's', 'd', 'p', 'q')
	return b
}

func TestFrameTraceExtErrors(t *testing.T) {
	if _, _, err := DecodeFrame(v2Frame(MaxTraceExt+1, make([]byte, MaxTraceExt+1))); !errors.Is(err, ErrTraceExtOversize) {
		t.Fatalf("oversize extension: got %v, want ErrTraceExtOversize", err)
	}
	if _, _, err := DecodeFrame(v2Frame(wiretrace.EncodedLen-1, make([]byte, wiretrace.EncodedLen-1))); !errors.Is(err, ErrTraceExtTruncated) {
		t.Fatalf("short extension: got %v, want ErrTraceExtTruncated", err)
	}
	// A well-formed length byte whose extension bytes are missing is
	// stream truncation, not corruption: wait for more bytes.
	full := mustFrame(t, transport.Message{Src: "s", Dst: "d", Payload: []byte("pq"), Trace: testContext(3)})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("v2 prefix length %d: got %v, want ErrFrameTruncated", cut, err)
		}
	}
	// Extension bytes beyond the context are ignored (forward compat).
	ext := testContext(5).Encode(nil)
	ext = append(ext, 0xEE, 0xEE, 0xEE)
	msg, rest, err := DecodeFrame(v2Frame(len(ext), ext))
	if err != nil {
		t.Fatalf("extended extension: %v", err)
	}
	if msg.Trace != testContext(5) || len(rest) != 0 {
		t.Fatalf("extended extension decode mismatch: %+v rest=%d", msg.Trace, len(rest))
	}
}

func TestFrameLenV2(t *testing.T) {
	frame := mustFrame(t, transport.Message{Src: "src", Dst: "dst", Payload: []byte("abc"), Trace: testContext(7)})
	if got := FrameLen(frame); got != len(frame) {
		t.Fatalf("FrameLen = %d, want %d", got, len(frame))
	}
	if got := FrameLen(frame[:frameHeaderV2-1]); got != 0 {
		t.Fatalf("FrameLen on short v2 header = %d, want 0", got)
	}
}

// FuzzWireFrame holds the decoder's core safety contract over arbitrary
// bytes: never panic, never slice out of range, make progress on every
// successful decode, and stay canonical — re-encoding a decoded frame
// reproduces exactly the bytes consumed. A valid-but-non-canonical v2
// frame (extension longer than the context, legal for forward compat)
// instead re-encodes to something that decodes back to the same
// message.
func FuzzWireFrame(f *testing.F) {
	seed := [][]byte{
		mustFrameF(f, transport.Message{Src: "a", Dst: "b", Payload: []byte("hello")}),
		mustFrameF(f, transport.Message{Src: "", Dst: "", Payload: nil}),
		mustFrameF(f, transport.Message{Src: "client000017", Dst: "Resolver", Payload: bytes.Repeat([]byte("q"), 512)}),
		mustFrameF(f, transport.Message{Src: "a", Dst: "b", Payload: []byte("traced"), Trace: testContext(2)}),
		{frameMagic, frameVersion, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}, // hostile length
		{frameMagic, frameVersionV2, 0, 0, 0, 0, 0, 0},           // v2 header with no ext-length byte
		{frameMagic, 3, 0, 0, 0, 0, 0, 0},                        // future version
		v2Frame(0, nil),                                          // truncated extension
		v2Frame(MaxTraceExt+1, nil),                              // oversize extension
		v2Frame(30, make([]byte, 30)),                            // non-canonical extension
		{0x00},
		nil,
	}
	// Two concatenated frames exercise the rest-slice path.
	double := append(append([]byte(nil), seed[0]...), seed[2]...)
	seed = append(seed, double)
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			msg, next, err := DecodeFrame(rest)
			if err != nil {
				// Errors must not consume input.
				if len(next) != len(rest) {
					t.Fatalf("decode error %v consumed %d bytes", err, len(rest)-len(next))
				}
				return
			}
			consumed := rest[:len(rest)-len(next)]
			reenc, encErr := AppendFrame(nil, msg)
			if encErr != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", encErr)
			}
			if canonicalFrame(consumed) {
				if !bytes.Equal(reenc, consumed) {
					t.Fatalf("decode/encode not canonical:\n consumed %x\n re-enc   %x", consumed, reenc)
				}
			} else {
				// Legal non-canonical input (v2 with a long or zero-
				// padded extension): the re-encoding must still decode
				// to the same message.
				msg2, rest2, err2 := DecodeFrame(reenc)
				if err2 != nil || len(rest2) != 0 {
					t.Fatalf("re-encoded frame failed to decode: %v (rest %d)", err2, len(rest2))
				}
				if msg2.Src != msg.Src || msg2.Dst != msg.Dst || !bytes.Equal(msg2.Payload, msg.Payload) || msg2.Trace != msg.Trace {
					t.Fatalf("re-encoded frame decoded differently: %+v vs %+v", msg2, msg)
				}
			}
			if len(next) >= len(rest) {
				t.Fatalf("successful decode made no progress")
			}
			rest = next
			if len(rest) == 0 {
				return
			}
		}
	})
}

// canonicalFrame reports whether frame bytes are what AppendFrame
// itself would produce: v1 always, v2 only with an exactly-sized,
// non-zero trace extension.
func canonicalFrame(b []byte) bool {
	if len(b) < 2 || b[1] != frameVersionV2 {
		return true
	}
	if int(b[8]) != wiretrace.EncodedLen {
		return false
	}
	ctx, err := wiretrace.DecodeContext(b[frameHeaderV2:])
	return err == nil && !ctx.IsZero()
}

func mustFrameF(f *testing.F, msg transport.Message) []byte {
	f.Helper()
	b, err := AppendFrame(nil, msg)
	if err != nil {
		f.Fatalf("AppendFrame: %v", err)
	}
	return b
}
