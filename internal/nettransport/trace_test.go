package nettransport

import (
	"sync"
	"testing"

	"decoupling/internal/transport"
)

// TestSendTracedDelivers holds the wire-level propagation contract:
// a context attached via SendTraced crosses the socket in the frame
// codec's v2 extension and arrives in the delivered Message, while
// plain Send keeps delivering zero contexts on the same connections.
func TestSendTracedDelivers(t *testing.T) {
	for _, mode := range []Mode{ModeUDP, ModeTCP} {
		t.Run(mode.String(), func(t *testing.T) {
			net := New(Options{Mode: mode, Seed: 1})
			defer net.Close()

			var mu sync.Mutex
			var got []transport.Message
			net.Register("sink", func(_ transport.Transport, msg transport.Message) {
				mu.Lock()
				got = append(got, msg)
				mu.Unlock()
			})
			net.Register("src", func(transport.Transport, transport.Message) {})

			want := testContext(0x41)
			if err := net.SendTraced("src", "sink", []byte("traced"), want); err != nil {
				t.Fatalf("SendTraced: %v", err)
			}
			if err := net.Send("src", "sink", []byte("plain")); err != nil {
				t.Fatalf("Send: %v", err)
			}
			net.Run()

			mu.Lock()
			defer mu.Unlock()
			if len(got) != 2 {
				t.Fatalf("delivered %d messages, want 2", len(got))
			}
			for _, msg := range got {
				switch string(msg.Payload) {
				case "traced":
					if msg.Trace != want {
						t.Errorf("traced message carried %+v, want %+v", msg.Trace, want)
					}
				case "plain":
					if !msg.Trace.IsZero() {
						t.Errorf("plain message carried a trace context: %+v", msg.Trace)
					}
				default:
					t.Errorf("unexpected payload %q", msg.Payload)
				}
			}
		})
	}
}
