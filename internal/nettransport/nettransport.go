// Package nettransport implements the transport.Transport contract
// over real loopback sockets: UDP datagrams, persistent TCP streams,
// or net/http POSTs. It is the production-shaped counterpart to
// internal/simnet — concurrent handler dispatch, per-endpoint worker
// pools, batched writes, wall clocks — carrying the same ledger
// observation and telemetry hooks, so knowledge-tuple derivation and
// provenance audits run unchanged over real sockets.
//
// What it guarantees, and what it does not, versus the simulator:
//
//   - Per-node serialization holds: each registered node has one
//     dispatcher goroutine, so a node's handler (and the timers it arms
//     through its Transport) never races itself. Protocol state like a
//     mix's batch queue stays lock-free on both transports.
//   - Per-destination FIFO holds in TCP mode (one stream, one writer
//     per destination). UDP and HTTP modes may reorder.
//   - Delivery is reliable in TCP and HTTP modes; UDP inherits the
//     kernel's silent-drop behavior under pressure, which Run bounds
//     with a stall timeout.
//   - Nothing is deterministic: scheduling, latencies, and Rand
//     interleavings vary run to run. Equivalence with the simulator is
//     semantic — identical knowledge tuples, verdicts, and canonical
//     audits — never byte-identical traces. The differential suite in
//     internal/experiments holds exactly that line.
package nettransport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"decoupling/internal/faults"
	"decoupling/internal/resilience"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// Mode selects the wire the transport moves frames over.
type Mode int

const (
	// ModeTCP uses one persistent loopback TCP stream per destination:
	// reliable, per-destination FIFO. The default, and what the
	// equivalence suite and loadgen mixnet leg run on.
	ModeTCP Mode = iota
	// ModeUDP uses loopback UDP datagrams: lossy under pressure,
	// unordered — the closest shape to simnet's datagram model.
	ModeUDP
	// ModeHTTP runs one net/http server per node and POSTs frame
	// batches: the shape of the deployed ODoH/OHTTP services.
	ModeHTTP
)

// String names the mode for metric labels and diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeUDP:
		return "udp"
	case ModeHTTP:
		return "http"
	default:
		return "tcp"
	}
}

// ErrClosed is returned by Send after Close: the transport fails
// closed — traffic is refused, never rerouted around the dead network.
var ErrClosed = errors.New("nettransport: transport closed")

// Options configures a Net. The zero value is usable: TCP mode,
// seed 0, one writer per destination, capture on.
type Options struct {
	Mode Mode
	// Seed feeds the Rand stream protocol code draws shuffles and
	// route picks from.
	Seed int64
	// Workers is the writer-pool size per destination endpoint for UDP
	// and HTTP modes (TCP keeps one writer per destination to preserve
	// FIFO). 0 means 1.
	Workers int
	// BatchBytes caps how many queued frames a writer coalesces into a
	// single socket write or POST body. 0 means 32 KiB (UDP caps at a
	// safe datagram size regardless).
	BatchBytes int
	// InboxDepth is each node's dispatch-queue depth; senders feel
	// backpressure beyond it. 0 means 4096.
	InboxDepth int
	// DisableCapture turns off the passive-observer packet log. The
	// million-client loadgen sweep sets it; everything audit-shaped
	// leaves it on.
	DisableCapture bool
	// StallTimeout bounds how long Run waits without any delivery or
	// loss progress before giving up on in-flight work (UDP kernel
	// drops leave no other signal). 0 means 5s.
	StallTimeout time.Duration
	// OutDepth is each destination's writer-queue depth. 0 means 4096.
	// Chaos runs shrink it to make overload reachable at test scale.
	OutDepth int
	// ShedAfter bounds how long a send may wait on a full writer queue
	// (and a delivery on a full inbox) before the frame is shed: the
	// sender gets a typed error wrapping faults.ErrShed and the drop is
	// counted, never silent. 0 keeps the legacy block-forever behavior.
	ShedAfter time.Duration
}

type item struct {
	msg  transport.Message
	fire func()
	// owned timers carry the arming node's crash epoch: a timer armed
	// before its owner crashed must not fire after (or across) the
	// crash — the wall-clock analogue of simnet cancelling a crashed
	// node's queue events.
	epoch uint64
	owned bool
}

type node struct {
	addr  transport.Addr
	inbox chan item

	// depthGauge mirrors the inbox depth seen by the dispatcher; only
	// the node's single dispatcher goroutine reads or writes the field,
	// so it needs no lock.
	depthGauge *telemetry.Gauge

	hmu sync.Mutex
	h   transport.Handler

	// Endpoint state, by mode. lnErr records a failed listener setup;
	// sends to the node surface it. endpointMu guards the mutable
	// fields across crash/restart transitions.
	endpointMu sync.Mutex
	tcpLn      net.Listener
	udpConn    *net.UDPConn
	httpSrv    *http.Server
	baseURL    string
	dialTo     string
	udpAddr    *net.UDPAddr
	lnErr      error

	// Crash-window state: down refuses sends and drops deliveries;
	// epoch increments at every down transition, invalidating timers
	// armed before the crash.
	down  atomic.Bool
	epoch atomic.Uint64
}

func (n *node) isDown() bool { return n.down.Load() }

func (n *node) handler() transport.Handler {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	return n.h
}

func (n *node) setHandler(h transport.Handler) {
	n.hmu.Lock()
	n.h = h
	n.hmu.Unlock()
}

// wireItem is one unit of writer work: an encoded frame, plus any
// fault flavoring decided at the codec boundary — a writer-side delay
// (latency spike), a TCP poison (write a partial header then reset the
// stream), or an HTTP chaos marker (POST that the server answers with
// a hung 5xx). Poison and chaos items carry frames already accounted
// as injected drops; they exist to make the loss observable on the
// wire, not to deliver.
type wireItem struct {
	frame  []byte
	delay  time.Duration
	poison bool
	chaos  bool
}

// outQueue is the writer side of one destination endpoint: a frame
// queue drained by a worker pool that batches frames per write.
type outQueue struct {
	ch chan wireItem
}

// Net is a real loopback transport. Construct with New; Close releases
// sockets and goroutines.
type Net struct {
	opts  Options
	start time.Time
	stop  chan struct{}

	closed atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu    sync.Mutex
	nodes map[transport.Addr]*node

	outMu sync.Mutex
	out   map[transport.Addr]*outQueue

	// pending counts accepted-but-not-finished work: datagrams from
	// Send acceptance to handler completion, timers from arming to
	// firing. Run quiesces on it reaching zero.
	pending   atomic.Int64
	delivered atomic.Uint64
	lost      atomic.Uint64

	// Fault-layer state: the merged injected plan (nil when fault-free;
	// swapped whole so the send path reads one atomic pointer), the
	// deterministic per-link loss-draw counters, and the chaos
	// accounting. transMu serializes crash/restart transitions against
	// Close so no goroutine starts after wg.Wait.
	plan       atomic.Pointer[faults.Plan]
	lossMu     sync.Mutex
	lossSeq    map[[2]transport.Addr]uint64
	transMu    sync.Mutex
	faultDrops atomic.Uint64
	shed       atomic.Uint64
	reconnects atomic.Uint64

	capMu   sync.Mutex
	capture []transport.PacketRecord

	telMu sync.Mutex
	tel   *telemetry.Telemetry

	// instr holds cached wall-clock metric handles so the send and
	// dispatch hot paths never take the registry's registration lock.
	// Nil until Instrument attaches a sink with a metrics registry; all
	// handle methods are nil-safe, so uninstrumented runs pay one
	// atomic pointer load.
	instr atomic.Pointer[netInstr]

	httpClient *http.Client

	wg sync.WaitGroup
}

var _ transport.Runner = (*Net)(nil)

// New creates a transport with the given options. Nodes come into
// existence on Register.
func New(opts Options) *Net {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.BatchBytes <= 0 {
		opts.BatchBytes = 32 << 10
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 5 * time.Second
	}
	if opts.OutDepth <= 0 {
		opts.OutDepth = 4096
	}
	t := &Net{
		opts:  opts,
		start: time.Now(),
		stop:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(opts.Seed)),
		nodes: map[transport.Addr]*node{},
		out:   map[transport.Addr]*outQueue{},
	}
	t.httpClient = &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
	}}
	return t
}

// netInstr is the cached-handle bundle behind the live transport
// metrics: frames/bytes queued per mode, writer-queue stalls, timer
// fires, and the pending-work level.
type netInstr struct {
	tel        *telemetry.Telemetry
	framesSent *telemetry.Counter
	bytesSent  *telemetry.Counter
	stalls     *telemetry.Counter
	timerFires *telemetry.Counter
	pending    *telemetry.Gauge
}

// Instrument attaches a telemetry sink: deliveries feed per-link
// message/byte counters, and — when the sink carries a metrics
// registry — the transport's internals (frames/bytes sent, writer
// stalls, timer fires, pending level, per-node inbox depth) surface as
// live wall-clock series. The tracer's clock is bound to this
// transport's elapsed-time clock. A nil tel is a no-op.
func (t *Net) Instrument(tel *telemetry.Telemetry) {
	t.telMu.Lock()
	t.tel = tel
	t.telMu.Unlock()
	tel.SetClock(t.Now)
	if tel == nil || tel.Metrics() == nil {
		t.instr.Store(nil)
		return
	}
	m := tel.Metrics()
	mode := telemetry.A("mode", t.opts.Mode.String())
	labels := append(tel.BaseLabels(), mode)
	t.instr.Store(&netInstr{
		tel:        tel,
		framesSent: m.Counter(telemetry.MetricTransportFramesSent, "Frames queued for the wire per mode.", labels...),
		bytesSent:  m.Counter(telemetry.MetricTransportBytesSent, "Encoded frame bytes queued for the wire per mode.", labels...),
		stalls:     m.Counter(telemetry.MetricTransportWriterStall, "Sends that blocked on a full writer queue.", labels...),
		timerFires: m.Counter(telemetry.MetricTransportTimerFires, "Transport timers fired.", labels...),
		pending:    m.Gauge(telemetry.MetricTransportPending, "In-flight work: queued frames, running handlers, armed timers.", labels...),
	})
}

func (t *Net) telemetrySink() *telemetry.Telemetry {
	t.telMu.Lock()
	defer t.telMu.Unlock()
	return t.tel
}

// Now returns elapsed wall time since construction — the transport's
// clock, analogous to simnet's virtual Now.
func (t *Net) Now() time.Duration { return time.Since(t.start) }

// Rand returns a pseudo-random int in [0, max) from the seeded stream.
// Unlike the simulator's, draws from concurrent handlers interleave
// nondeterministically; protocol decisions stay well-distributed but
// not replayable.
func (t *Net) Rand(max int) int {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Intn(max)
}

// Register attaches a handler to addr, creating the node: its
// listening socket, reader, and the single dispatcher goroutine that
// serializes its handler. Registering an existing address replaces the
// handler only.
func (t *Net) Register(addr transport.Addr, h transport.Handler) {
	t.mu.Lock()
	if n := t.nodes[addr]; n != nil {
		t.mu.Unlock()
		n.setHandler(h)
		return
	}
	n := &node{addr: addr, inbox: make(chan item, t.opts.InboxDepth), h: h}
	t.nodes[addr] = n
	t.mu.Unlock()

	t.listen(n)
	t.wg.Add(1)
	go t.dispatch(n)
}

// listen opens the node's endpoint for the configured mode and starts
// its readers. Loopback listen failures are environmental; they are
// recorded and surfaced by sends to this node.
func (t *Net) listen(n *node) {
	if err := t.bind(n, ""); err != nil {
		n.lnErr = err
	}
}

// chaosHeader marks a POST carrying a frame the fault plan decided to
// lose: the receiving server hangs briefly and answers 5xx without
// delivering, so HTTP-mode injected loss looks like a failing upstream,
// not a silent gap.
const chaosHeader = "X-Decoupling-Chaos"

// bind opens (or, for a crash restart, re-opens) the node's endpoint
// and starts its readers. An empty addr binds an ephemeral loopback
// port and records it; a non-empty addr rebinds the recorded port so
// peers' dial targets survive the restart. The caller holds no lock;
// reader goroutines are wg-tracked.
func (t *Net) bind(n *node, addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	switch t.opts.Mode {
	case ModeUDP:
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return err
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			return err
		}
		_ = conn.SetReadBuffer(4 << 20)
		n.endpointMu.Lock()
		n.udpConn = conn
		n.udpAddr = conn.LocalAddr().(*net.UDPAddr)
		n.endpointMu.Unlock()
		t.wg.Add(1)
		go t.readUDP(n, conn)
	case ModeHTTP:
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("POST /frames", func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get(chaosHeader) != "" {
				// Injected loss, HTTP flavor: a hung then failing
				// response. The frame was already accounted at the
				// codec boundary; it must not be delivered.
				time.Sleep(2 * time.Millisecond)
				http.Error(w, "injected fault", http.StatusServiceUnavailable)
				return
			}
			body, err := io.ReadAll(io.LimitReader(r.Body, 2*MaxFramePayload))
			if err != nil {
				http.Error(w, "read error", http.StatusBadRequest)
				return
			}
			t.deliverBatch(body)
			w.WriteHeader(http.StatusOK)
		})
		srv := &http.Server{Handler: mux}
		n.endpointMu.Lock()
		n.httpSrv = srv
		n.baseURL = "http://" + ln.Addr().String()
		n.dialTo = ln.Addr().String()
		n.endpointMu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			_ = srv.Serve(ln)
		}()
	default: // ModeTCP
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return err
		}
		n.endpointMu.Lock()
		n.tcpLn = ln
		n.dialTo = ln.Addr().String()
		n.endpointMu.Unlock()
		t.wg.Add(1)
		go t.acceptTCP(n, ln)
	}
	return nil
}

// dispatch is a node's single dispatcher: every inbound datagram and
// every owned timer runs here, serialized — the same guarantee the
// simulator's event loop gives its handlers.
func (t *Net) dispatch(n *node) {
	defer t.wg.Done()
	view := &nodeView{t: t, n: n}
	for {
		select {
		case <-t.stop:
			return
		case it := <-n.inbox:
			if ih := t.instr.Load(); ih != nil {
				if n.depthGauge == nil {
					n.depthGauge = ih.tel.Metrics().Gauge(telemetry.MetricTransportInboxDepth,
						"Dispatch-queue depth per node, sampled at dequeue.",
						append(ih.tel.BaseLabels(), telemetry.A("node", string(n.addr)))...)
				}
				n.depthGauge.Set(float64(len(n.inbox)))
				if it.fire != nil {
					ih.timerFires.Add(1)
				}
			}
			if it.fire != nil {
				// A timer owned by a node that crashed after arming it is
				// cancelled: the epoch moved (or the node is still down).
				if it.owned && (n.isDown() || it.epoch != n.epoch.Load()) {
					t.finish(1)
					continue
				}
				it.fire()
				t.finish(1)
				continue
			}
			if n.isDown() {
				// Raced a crash transition: treat like any other inbound
				// datagram to a crashed node.
				t.dropInjected(1, "crash")
				continue
			}
			t.recordDelivery(it.msg)
			if h := n.handler(); h != nil {
				h(view, it.msg)
			}
			t.finish(1)
		}
	}
}

// finish releases n units of pending work and mirrors the new level
// into the pending gauge when instrumented.
func (t *Net) finish(n int64) {
	level := t.pending.Add(-n)
	if ih := t.instr.Load(); ih != nil {
		ih.pending.Set(float64(level))
	}
}

func (t *Net) recordDelivery(msg transport.Message) {
	t.delivered.Add(1)
	if !t.opts.DisableCapture {
		t.capMu.Lock()
		t.capture = append(t.capture, transport.PacketRecord{
			Time: t.Now(), Src: msg.Src, Dst: msg.Dst, Size: len(msg.Payload),
		})
		t.capMu.Unlock()
	}
	if tel := t.telemetrySink(); tel != nil {
		src, dst := telemetry.A("src", string(msg.Src)), telemetry.A("dst", string(msg.Dst))
		tel.Count(telemetry.MetricTransportMessages, "Datagrams delivered per link (real transport).", 1, src, dst)
		tel.Count(telemetry.MetricTransportBytes, "Payload bytes delivered per link (real transport).", uint64(len(msg.Payload)), src, dst)
	}
}

// countLost accounts n lost frames without touching pending. Organic
// losses (the wire ate it: write errors, closed transport, kernel
// drops) and injected ones (the fault plan ate it) land under the same
// lost total — retry logic cares only that the message is gone — but
// carry distinct metric labels, so a chaos run never masquerades as
// wire flakiness in /metrics.
func (t *Net) countLost(n int, reason string, injected bool) {
	t.lost.Add(uint64(n))
	tel := t.telemetrySink()
	if injected {
		t.faultDrops.Add(uint64(n))
		if tel != nil {
			tel.Count(telemetry.MetricTransportFaultDrops, "Datagrams dropped by injected faults (real transport).", uint64(n),
				telemetry.A("reason", reason))
		}
		reason = "injected:" + reason
	}
	if tel != nil {
		tel.Count(telemetry.MetricTransportLost, "Datagrams lost on the real transport.", uint64(n),
			telemetry.A("reason", reason))
	}
}

// dropFrames accounts n in-flight frames the wire ate (write error,
// closed transport, unroutable destination) and releases their pending
// units.
func (t *Net) dropFrames(n int, reason string) {
	if n <= 0 {
		return
	}
	t.countLost(n, reason, false)
	t.finish(int64(n))
}

// dropInjected is dropFrames for in-flight frames an injected fault
// ate (a crashed destination, a drained inbox).
func (t *Net) dropInjected(n int, reason string) {
	if n <= 0 {
		return
	}
	t.countLost(n, reason, true)
	t.finish(int64(n))
}

// shedFrame accounts one shed under overload: counted, surfaced in
// metrics, and — on the send side — returned to the caller as a typed
// error. Never silent.
func (t *Net) shedFrame(where string) {
	t.shed.Add(1)
	if tel := t.telemetrySink(); tel != nil {
		tel.Count(telemetry.MetricTransportShed, "Frames shed under overload instead of blocking.", 1,
			telemetry.A("where", where))
	}
	t.dropFrames(1, "shed")
}

// Send encodes a frame and queues it on the destination endpoint's
// writer pool. It fails fast on unregistered destinations and fails
// closed (ErrClosed) after Close; queued frames travel the real wire
// and are delivered by the destination node's dispatcher.
func (t *Net) Send(src, dst transport.Addr, payload []byte) error {
	return t.SendTraced(src, dst, payload, wiretrace.Context{})
}

// SendTraced is Send with a wire-trace context riding in the frame
// codec's v2 trace extension — out-of-band of the payload, so traced
// and untraced frames carry byte-identical payloads.
func (t *Net) SendTraced(src, dst transport.Addr, payload []byte, ctx wiretrace.Context) error {
	if t.closed.Load() {
		return fmt.Errorf("nettransport: send %s->%s: %w", src, dst, ErrClosed)
	}
	t.mu.Lock()
	n, ok := t.nodes[dst]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("nettransport: send to unregistered node %q", dst)
	}
	if n.lnErr != nil {
		return fmt.Errorf("nettransport: send to %q: %w", dst, n.lnErr)
	}
	frame, err := AppendFrame(nil, transport.Message{Src: src, Dst: dst, Payload: payload, Trace: ctx})
	if err != nil {
		return err
	}
	// The frame exists; the fault plan now decides its fate at the
	// codec boundary, mirroring simnet's Send-time order: crashed
	// destination fails fast, crashed source fails fast, partitions
	// drop silently, burst loss drops with a mode-flavored wire symptom,
	// spikes ride on the writer.
	it := wireItem{frame: frame}
	if n.isDown() {
		t.countLost(1, "crash", true)
		return fmt.Errorf("nettransport: send %s->%s: %w", src, dst, faults.ErrNodeDown)
	}
	if pl := t.plan.Load(); pl != nil {
		t.mu.Lock()
		srcNode := t.nodes[src]
		t.mu.Unlock()
		if srcNode != nil && srcNode.isDown() {
			return fmt.Errorf("nettransport: send %s->%s: source %w", src, dst, faults.ErrNodeDown)
		}
		now := t.Now()
		if pl.PartitionedAt(src, dst, now) {
			t.countLost(1, "partition", true)
			return nil // partitions are silent: only timeouts notice
		}
		if burst := pl.LossAt(src, dst, now); burst > 0 {
			t.lossMu.Lock()
			if t.lossSeq == nil {
				t.lossSeq = map[[2]transport.Addr]uint64{}
			}
			seq := t.lossSeq[[2]transport.Addr{src, dst}]
			t.lossSeq[[2]transport.Addr{src, dst}] = seq + 1
			t.lossMu.Unlock()
			if faults.LossDraw(t.opts.Seed, src, dst, seq) < burst {
				// Injected drop. Deterministic (same draw stream as
				// simnet), accounted here; the writer then makes it
				// hurt the way this wire fails: TCP resets the stream
				// mid-frame, HTTP gets a hung 5xx, UDP just loses it.
				t.countLost(1, "loss", true)
				switch t.opts.Mode {
				case ModeTCP:
					t.offerSpecial(dst, n, wireItem{frame: frame, poison: true})
				case ModeHTTP:
					t.offerSpecial(dst, n, wireItem{frame: frame, chaos: true})
				}
				return nil // silently dropped, as the wire would
			}
		}
		it.delay = pl.SpikeAt(src, dst, now)
	}
	q := t.queueFor(dst, n)
	level := t.pending.Add(1)
	ih := t.instr.Load()
	if ih != nil {
		ih.framesSent.Add(1)
		ih.bytesSent.Add(uint64(len(frame)))
		ih.pending.Set(float64(level))
	}
	// Fast path: queue has room. Falling through to the blocking wait is
	// a writer-queue stall — the wire (or its writer pool) is not
	// keeping up with producers — which the live plane counts.
	select {
	case q.ch <- it:
		return nil
	default:
	}
	if ih != nil {
		ih.stalls.Add(1)
	}
	if t.opts.ShedAfter > 0 {
		timer := time.NewTimer(t.opts.ShedAfter)
		defer timer.Stop()
		select {
		case q.ch <- it:
			return nil
		case <-timer.C:
			t.shedFrame("send")
			return fmt.Errorf("nettransport: send %s->%s: %w", src, dst, faults.ErrShed)
		case <-t.stop:
			t.dropFrames(1, "closed")
			return fmt.Errorf("nettransport: send %s->%s: %w", src, dst, ErrClosed)
		}
	}
	select {
	case q.ch <- it:
		return nil
	case <-t.stop:
		t.dropFrames(1, "closed")
		return fmt.Errorf("nettransport: send %s->%s: %w", src, dst, ErrClosed)
	}
}

// offerSpecial best-effort enqueues a poison/chaos item so an injected
// drop is visible on the wire. The loss is already accounted; if the
// writer queue is saturated the wire symptom is skipped, never the
// accounting.
func (t *Net) offerSpecial(dst transport.Addr, n *node, it wireItem) {
	q := t.queueFor(dst, n)
	select {
	case q.ch <- it:
	default:
	}
}

// queueFor returns the destination's writer queue, starting its worker
// pool on first use.
func (t *Net) queueFor(dst transport.Addr, n *node) *outQueue {
	t.outMu.Lock()
	defer t.outMu.Unlock()
	if q := t.out[dst]; q != nil {
		return q
	}
	q := &outQueue{ch: make(chan wireItem, t.opts.OutDepth)}
	t.out[dst] = q
	workers := t.opts.Workers
	if t.opts.Mode == ModeTCP {
		workers = 1 // one writer per stream preserves per-destination FIFO
	}
	for i := 0; i < workers; i++ {
		t.wg.Add(1)
		switch t.opts.Mode {
		case ModeUDP:
			go t.udpWriter(q, n)
		case ModeHTTP:
			go t.httpWriter(q, n)
		default:
			go t.tcpWriter(q, n)
		}
	}
	return q
}

// work is one drained unit of writer work: either a coalesced batch of
// plain frames (optionally delayed by a latency spike — the delay is
// head-of-line, as a slow stream would be) or a single poison/chaos
// item making an injected drop observable on the wire.
type work struct {
	batch  []byte
	count  int
	delay  time.Duration
	poison bool
	chaos  bool
	frame  []byte // victim frame for poison/chaos wire symptoms
}

// nextWork blocks for one item then coalesces whatever plain frames
// are queued, up to limit bytes, into a single write. Special items
// (poison, chaos, delayed) never coalesce: one pulled mid-batch is
// stashed for the next call so nothing reorders. ok is false on
// shutdown.
func (t *Net) nextWork(q *outQueue, limit int, stash *wireItem, stashed *bool) (w work, ok bool) {
	var first wireItem
	if *stashed {
		first, *stashed = *stash, false
	} else {
		select {
		case <-t.stop:
			return work{}, false
		case first = <-q.ch:
		}
	}
	if first.poison || first.chaos {
		return work{poison: first.poison, chaos: first.chaos, frame: first.frame}, true
	}
	w = work{batch: first.frame, count: 1, delay: first.delay}
	if w.delay > 0 {
		return w, true
	}
	for len(w.batch) < limit {
		select {
		case f := <-q.ch:
			if f.poison || f.chaos || f.delay > 0 {
				*stash, *stashed = f, true
				return w, true
			}
			w.batch = append(w.batch, f.frame...)
			w.count++
		default:
			return w, true
		}
	}
	return w, true
}

// sleepOrStop sleeps d (a spike delay, a reconnect backoff) unless the
// transport stops first; reports whether the sleep completed.
func (t *Net) sleepOrStop(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.stop:
		return false
	}
}

// dialRetry is the capped-jittered backoff writers use to re-establish
// a stream after a reset or a crashed destination's restart window.
var dialRetry = resilience.Policy{
	Protocol:    "nettransport-dial",
	MaxAttempts: 8,
	BaseDelay:   2 * time.Millisecond,
	MaxDelay:    250 * time.Millisecond,
	JitterFrac:  0.25,
}

func (t *Net) tcpWriter(q *outQueue, n *node) {
	defer t.wg.Done()
	var conn net.Conn
	var stash wireItem
	var stashed, everConnected bool
	seed := uint64(t.opts.Seed) ^ uint64(len(n.addr))
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		w, ok := t.nextWork(q, t.opts.BatchBytes, &stash, &stashed)
		if !ok {
			return
		}
		if w.poison {
			// Injected loss, TCP flavor: the victim frame dies mid-wire.
			// Write just the header so the reader stalls inside the
			// frame body, then reset the stream (SO_LINGER 0 turns the
			// close into an RST). The next batch reconnects.
			if conn != nil {
				_, _ = conn.Write(w.frame[:frameHeader])
				if tc, okc := conn.(*net.TCPConn); okc {
					_ = tc.SetLinger(0)
				}
				conn.Close()
				conn = nil
			}
			continue
		}
		if n.isDown() {
			// In-flight frames to a crashed destination die as fault
			// drops, same as simnet dropping inbound at delivery time.
			t.dropInjected(w.count, "crash")
			continue
		}
		if !t.sleepOrStop(w.delay) {
			t.dropFrames(w.count, "closed")
			return
		}
		if conn == nil {
			c, derr := t.dialBackoff(n, seed)
			if derr != nil {
				t.dropFrames(w.count, "dial")
				continue
			}
			conn = c
			if everConnected {
				t.noteReconnect(n)
			}
			everConnected = true
		}
		if _, err := conn.Write(w.batch); err != nil {
			conn.Close()
			conn = nil
			t.dropFrames(w.count, "write")
		}
	}
}

// dialBackoff dials the node's current TCP endpoint with capped,
// jittered, seed-deterministic backoff — riding out a crash window is
// exactly as long as the restart plus one backoff step.
func (t *Net) dialBackoff(n *node, seed uint64) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < dialRetry.MaxAttempts; attempt++ {
		if attempt > 0 && !t.sleepOrStop(dialRetry.Backoff(seed, attempt)) {
			return nil, ErrClosed
		}
		n.endpointMu.Lock()
		target := n.dialTo
		n.endpointMu.Unlock()
		c, err := net.Dial("tcp", target)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// noteReconnect counts one re-established stream.
func (t *Net) noteReconnect(n *node) {
	t.reconnects.Add(1)
	if tel := t.telemetrySink(); tel != nil {
		tel.Count(telemetry.MetricTransportReconnects, "Writer streams re-established after a reset or restart.", 1,
			telemetry.A("dst", string(n.addr)))
	}
}

// maxUDPBatch keeps batched datagrams under the loopback UDP payload
// ceiling.
const maxUDPBatch = 60000

func (t *Net) udpWriter(q *outQueue, n *node) {
	defer t.wg.Done()
	var stash wireItem
	var stashed bool
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		// Without a send socket this worker can only drain and drop.
		for {
			w, ok := t.nextWork(q, maxUDPBatch, &stash, &stashed)
			if !ok {
				return
			}
			t.dropFrames(w.count, "socket")
		}
	}
	defer conn.Close()
	_ = conn.SetWriteBuffer(4 << 20)
	for {
		w, ok := t.nextWork(q, maxUDPBatch, &stash, &stashed)
		if !ok {
			return
		}
		if w.count == 0 {
			continue // UDP injected drops never enqueue wire symptoms
		}
		if n.isDown() {
			t.dropInjected(w.count, "crash")
			continue
		}
		if !t.sleepOrStop(w.delay) {
			t.dropFrames(w.count, "closed")
			return
		}
		n.endpointMu.Lock()
		dst := n.udpAddr
		n.endpointMu.Unlock()
		if _, err := conn.WriteToUDP(w.batch, dst); err != nil {
			t.dropFrames(w.count, "write")
		}
	}
}

func (t *Net) httpWriter(q *outQueue, n *node) {
	defer t.wg.Done()
	var stash wireItem
	var stashed bool
	for {
		w, ok := t.nextWork(q, t.opts.BatchBytes, &stash, &stashed)
		if !ok {
			return
		}
		n.endpointMu.Lock()
		base := n.baseURL
		n.endpointMu.Unlock()
		if w.chaos {
			// Injected loss, HTTP flavor: a marked POST the server
			// answers with a hung 5xx. Accounting happened at the codec
			// boundary; a transport error here changes nothing.
			req, rerr := http.NewRequest("POST", base+"/frames", bytes.NewReader(w.frame))
			if rerr == nil {
				req.Header.Set("Content-Type", "application/octet-stream")
				req.Header.Set(chaosHeader, "drop")
				if resp, perr := t.httpClient.Do(req); perr == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			continue
		}
		if n.isDown() {
			t.dropInjected(w.count, "crash")
			continue
		}
		if !t.sleepOrStop(w.delay) {
			t.dropFrames(w.count, "closed")
			return
		}
		resp, err := t.httpClient.Post(base+"/frames", "application/octet-stream", bytes.NewReader(w.batch))
		if err != nil {
			t.dropFrames(w.count, "post")
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.dropFrames(w.count, "status")
		}
	}
}

func (t *Net) acceptTCP(n *node, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readTCP(conn)
	}
}

// readTCP decodes the stream one frame at a time: header first, then
// the exact frame body. Structural corruption drops the connection.
func (t *Net) readTCP(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	header := make([]byte, frameHeader, frameHeaderV2)
	for {
		header = header[:frameHeader]
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		// A v2 frame's length depends on the extension-length byte that
		// follows the common header; pull it before sizing the read.
		if need := headerLen(header); need > len(header) {
			header = header[:need]
			if _, err := io.ReadFull(conn, header[frameHeader:]); err != nil {
				return
			}
		}
		total := FrameLen(header)
		if total < frameHeader || total > frameHeaderV2+MaxTraceExt+2*MaxAddrLen+MaxFramePayload {
			return
		}
		buf := make([]byte, total)
		copy(buf, header)
		if _, err := io.ReadFull(conn, buf[len(header):]); err != nil {
			return
		}
		msg, _, err := DecodeFrame(buf)
		if err != nil {
			return
		}
		t.deliver(msg)
	}
}

func (t *Net) readUDP(n *node, conn *net.UDPConn) {
	defer t.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		nr, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		t.deliverBatch(append([]byte(nil), buf[:nr]...))
	}
}

// deliverBatch decodes a concatenation of frames and delivers each.
func (t *Net) deliverBatch(b []byte) {
	for len(b) > 0 {
		msg, rest, err := DecodeFrame(b)
		if err != nil {
			return // trailing corruption: the valid prefix was delivered
		}
		b = rest
		t.deliver(msg)
	}
}

// deliver routes one decoded frame to its node's dispatcher. The
// sender's pending count transfers to the dispatcher, which releases
// it after the handler runs.
func (t *Net) deliver(msg transport.Message) {
	if t.closed.Load() {
		t.dropFrames(1, "closed")
		return
	}
	t.mu.Lock()
	n := t.nodes[msg.Dst]
	t.mu.Unlock()
	if n == nil {
		t.dropFrames(1, "unroutable")
		return
	}
	if n.isDown() {
		// A frame that crossed the wire before the destination crashed
		// dies at delivery, exactly where simnet drops inbound to a
		// crashed node.
		t.dropInjected(1, "crash")
		return
	}
	select {
	case n.inbox <- item{msg: msg}:
		return
	default:
	}
	if t.opts.ShedAfter > 0 {
		// Bounded-inbox overload: wait at most ShedAfter for the
		// dispatcher to drain, then shed — counted and labeled, never a
		// silent drop.
		timer := time.NewTimer(t.opts.ShedAfter)
		defer timer.Stop()
		select {
		case n.inbox <- item{msg: msg}:
		case <-timer.C:
			t.shedFrame("deliver")
		case <-t.stop:
			t.dropFrames(1, "closed")
		}
		return
	}
	select {
	case n.inbox <- item{msg: msg}:
	case <-t.stop:
		t.dropFrames(1, "closed")
	}
}

// After schedules fn after delay. Armed outside any handler it runs on
// its own goroutine (the analogue of simnet's owner-less timers);
// handlers arm timers through their nodeView, which serializes them
// with the owning node.
func (t *Net) After(delay time.Duration, fn func()) {
	if t.closed.Load() {
		return
	}
	t.pending.Add(1)
	time.AfterFunc(delay, func() {
		defer t.finish(1)
		if ih := t.instr.Load(); ih != nil {
			ih.timerFires.Add(1)
		}
		if !t.closed.Load() {
			fn()
		}
	})
}

// Run waits until the transport quiesces — every accepted datagram
// delivered (or lost) and every armed timer fired — and returns the
// number of messages delivered during this call. Unlike the simulator,
// where nothing moves before Run, a real wire delivers concurrently
// with sending: messages handled before Run is entered are not in its
// return value, so callers wanting totals read Delivered, not Run's
// delta. If in-flight work
// makes no progress for StallTimeout (possible only where the wire
// itself drops silently, i.e. UDP), Run stops waiting and returns.
func (t *Net) Run() uint64 {
	startDelivered := t.delivered.Load()
	lastSeen := startDelivered + t.lost.Load()
	lastProgress := time.Now()
	for {
		if t.closed.Load() || t.pending.Load() == 0 {
			break
		}
		time.Sleep(200 * time.Microsecond)
		if cur := t.delivered.Load() + t.lost.Load(); cur != lastSeen {
			lastSeen = cur
			lastProgress = time.Now()
			continue
		}
		if time.Since(lastProgress) > t.opts.StallTimeout {
			break
		}
	}
	return t.delivered.Load() - startDelivered
}

// Capture returns a copy of the passive observer's packet records
// (empty when DisableCapture is set).
func (t *Net) Capture() []transport.PacketRecord {
	t.capMu.Lock()
	defer t.capMu.Unlock()
	return append([]transport.PacketRecord(nil), t.capture...)
}

// Delivered returns the all-time count of delivered messages.
func (t *Net) Delivered() uint64 { return t.delivered.Load() }

// Lost returns the all-time count of messages the transport ate.
func (t *Net) Lost() uint64 { return t.lost.Load() }

// Pending reports in-flight work (queued frames, running handlers,
// armed timers).
func (t *Net) Pending() int { return int(t.pending.Load()) }

// Close shuts the transport down: subsequent Sends fail closed with
// ErrClosed, listeners and dispatchers stop, and sockets are released.
// In-flight work is dropped, never handed to any fallback path.
func (t *Net) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.stop)
	// Ride out any in-flight crash/restart transition: transitions check
	// closed under transMu before adding goroutines, so once we hold the
	// lock no new endpoint or reader can appear behind our back.
	t.transMu.Lock()
	t.transMu.Unlock()
	t.mu.Lock()
	nodes := make([]*node, 0, len(t.nodes))
	for _, n := range t.nodes {
		nodes = append(nodes, n)
	}
	t.mu.Unlock()
	for _, n := range nodes {
		n.endpointMu.Lock()
		if n.tcpLn != nil {
			n.tcpLn.Close()
		}
		if n.udpConn != nil {
			n.udpConn.Close()
		}
		if n.httpSrv != nil {
			n.httpSrv.Close()
		}
		n.endpointMu.Unlock()
	}
	t.httpClient.CloseIdleConnections()
	t.wg.Wait()
	return nil
}

// nodeView is the Transport a node's handler runs against: Sends pass
// through, timers belong to the node — they run on its dispatcher,
// serialized with its handler, mirroring simnet's timer ownership.
type nodeView struct {
	t *Net
	n *node
}

var _ transport.Transport = (*nodeView)(nil)
var _ transport.ContextSender = (*nodeView)(nil)

func (v *nodeView) Send(src, dst transport.Addr, payload []byte) error {
	return v.t.Send(src, dst, payload)
}
func (v *nodeView) SendTraced(src, dst transport.Addr, payload []byte, ctx wiretrace.Context) error {
	return v.t.SendTraced(src, dst, payload, ctx)
}
func (v *nodeView) Register(addr transport.Addr, h transport.Handler) { v.t.Register(addr, h) }
func (v *nodeView) Now() time.Duration                                { return v.t.Now() }
func (v *nodeView) Rand(max int) int                                  { return v.t.Rand(max) }

func (v *nodeView) After(delay time.Duration, fn func()) {
	t := v.t
	if t.closed.Load() || v.n.isDown() {
		// A crashed node arms nothing; and any timer armed here carries
		// the node's crash epoch so a later crash cancels it at fire
		// time (simnet cancels the queue events of a crashed owner).
		return
	}
	ep := v.n.epoch.Load()
	t.pending.Add(1)
	time.AfterFunc(delay, func() {
		select {
		case v.n.inbox <- item{fire: fn, epoch: ep, owned: true}:
		case <-t.stop:
			t.finish(1)
		}
	})
}
