// Package nettransport implements the transport.Transport contract
// over real loopback sockets: UDP datagrams, persistent TCP streams,
// or net/http POSTs. It is the production-shaped counterpart to
// internal/simnet — concurrent handler dispatch, per-endpoint worker
// pools, batched writes, wall clocks — carrying the same ledger
// observation and telemetry hooks, so knowledge-tuple derivation and
// provenance audits run unchanged over real sockets.
//
// What it guarantees, and what it does not, versus the simulator:
//
//   - Per-node serialization holds: each registered node has one
//     dispatcher goroutine, so a node's handler (and the timers it arms
//     through its Transport) never races itself. Protocol state like a
//     mix's batch queue stays lock-free on both transports.
//   - Per-destination FIFO holds in TCP mode (one stream, one writer
//     per destination). UDP and HTTP modes may reorder.
//   - Delivery is reliable in TCP and HTTP modes; UDP inherits the
//     kernel's silent-drop behavior under pressure, which Run bounds
//     with a stall timeout.
//   - Nothing is deterministic: scheduling, latencies, and Rand
//     interleavings vary run to run. Equivalence with the simulator is
//     semantic — identical knowledge tuples, verdicts, and canonical
//     audits — never byte-identical traces. The differential suite in
//     internal/experiments holds exactly that line.
package nettransport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// Mode selects the wire the transport moves frames over.
type Mode int

const (
	// ModeTCP uses one persistent loopback TCP stream per destination:
	// reliable, per-destination FIFO. The default, and what the
	// equivalence suite and loadgen mixnet leg run on.
	ModeTCP Mode = iota
	// ModeUDP uses loopback UDP datagrams: lossy under pressure,
	// unordered — the closest shape to simnet's datagram model.
	ModeUDP
	// ModeHTTP runs one net/http server per node and POSTs frame
	// batches: the shape of the deployed ODoH/OHTTP services.
	ModeHTTP
)

// String names the mode for metric labels and diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeUDP:
		return "udp"
	case ModeHTTP:
		return "http"
	default:
		return "tcp"
	}
}

// ErrClosed is returned by Send after Close: the transport fails
// closed — traffic is refused, never rerouted around the dead network.
var ErrClosed = errors.New("nettransport: transport closed")

// Options configures a Net. The zero value is usable: TCP mode,
// seed 0, one writer per destination, capture on.
type Options struct {
	Mode Mode
	// Seed feeds the Rand stream protocol code draws shuffles and
	// route picks from.
	Seed int64
	// Workers is the writer-pool size per destination endpoint for UDP
	// and HTTP modes (TCP keeps one writer per destination to preserve
	// FIFO). 0 means 1.
	Workers int
	// BatchBytes caps how many queued frames a writer coalesces into a
	// single socket write or POST body. 0 means 32 KiB (UDP caps at a
	// safe datagram size regardless).
	BatchBytes int
	// InboxDepth is each node's dispatch-queue depth; senders feel
	// backpressure beyond it. 0 means 4096.
	InboxDepth int
	// DisableCapture turns off the passive-observer packet log. The
	// million-client loadgen sweep sets it; everything audit-shaped
	// leaves it on.
	DisableCapture bool
	// StallTimeout bounds how long Run waits without any delivery or
	// loss progress before giving up on in-flight work (UDP kernel
	// drops leave no other signal). 0 means 5s.
	StallTimeout time.Duration
}

type item struct {
	msg  transport.Message
	fire func()
}

type node struct {
	addr  transport.Addr
	inbox chan item

	// depthGauge mirrors the inbox depth seen by the dispatcher; only
	// the node's single dispatcher goroutine reads or writes the field,
	// so it needs no lock.
	depthGauge *telemetry.Gauge

	hmu sync.Mutex
	h   transport.Handler

	// Endpoint state, by mode. lnErr records a failed listener setup;
	// sends to the node surface it.
	tcpLn   net.Listener
	udpConn *net.UDPConn
	httpSrv *http.Server
	baseURL string
	dialTo  string
	udpAddr *net.UDPAddr
	lnErr   error
}

func (n *node) handler() transport.Handler {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	return n.h
}

func (n *node) setHandler(h transport.Handler) {
	n.hmu.Lock()
	n.h = h
	n.hmu.Unlock()
}

// outQueue is the writer side of one destination endpoint: a frame
// queue drained by a worker pool that batches frames per write.
type outQueue struct {
	ch chan []byte
}

// Net is a real loopback transport. Construct with New; Close releases
// sockets and goroutines.
type Net struct {
	opts  Options
	start time.Time
	stop  chan struct{}

	closed atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu    sync.Mutex
	nodes map[transport.Addr]*node

	outMu sync.Mutex
	out   map[transport.Addr]*outQueue

	// pending counts accepted-but-not-finished work: datagrams from
	// Send acceptance to handler completion, timers from arming to
	// firing. Run quiesces on it reaching zero.
	pending   atomic.Int64
	delivered atomic.Uint64
	lost      atomic.Uint64

	capMu   sync.Mutex
	capture []transport.PacketRecord

	telMu sync.Mutex
	tel   *telemetry.Telemetry

	// instr holds cached wall-clock metric handles so the send and
	// dispatch hot paths never take the registry's registration lock.
	// Nil until Instrument attaches a sink with a metrics registry; all
	// handle methods are nil-safe, so uninstrumented runs pay one
	// atomic pointer load.
	instr atomic.Pointer[netInstr]

	httpClient *http.Client

	wg sync.WaitGroup
}

var _ transport.Runner = (*Net)(nil)

// New creates a transport with the given options. Nodes come into
// existence on Register.
func New(opts Options) *Net {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.BatchBytes <= 0 {
		opts.BatchBytes = 32 << 10
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 5 * time.Second
	}
	t := &Net{
		opts:  opts,
		start: time.Now(),
		stop:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(opts.Seed)),
		nodes: map[transport.Addr]*node{},
		out:   map[transport.Addr]*outQueue{},
	}
	t.httpClient = &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
	}}
	return t
}

// netInstr is the cached-handle bundle behind the live transport
// metrics: frames/bytes queued per mode, writer-queue stalls, timer
// fires, and the pending-work level.
type netInstr struct {
	tel        *telemetry.Telemetry
	framesSent *telemetry.Counter
	bytesSent  *telemetry.Counter
	stalls     *telemetry.Counter
	timerFires *telemetry.Counter
	pending    *telemetry.Gauge
}

// Instrument attaches a telemetry sink: deliveries feed per-link
// message/byte counters, and — when the sink carries a metrics
// registry — the transport's internals (frames/bytes sent, writer
// stalls, timer fires, pending level, per-node inbox depth) surface as
// live wall-clock series. The tracer's clock is bound to this
// transport's elapsed-time clock. A nil tel is a no-op.
func (t *Net) Instrument(tel *telemetry.Telemetry) {
	t.telMu.Lock()
	t.tel = tel
	t.telMu.Unlock()
	tel.SetClock(t.Now)
	if tel == nil || tel.Metrics() == nil {
		t.instr.Store(nil)
		return
	}
	m := tel.Metrics()
	mode := telemetry.A("mode", t.opts.Mode.String())
	labels := append(tel.BaseLabels(), mode)
	t.instr.Store(&netInstr{
		tel:        tel,
		framesSent: m.Counter(telemetry.MetricTransportFramesSent, "Frames queued for the wire per mode.", labels...),
		bytesSent:  m.Counter(telemetry.MetricTransportBytesSent, "Encoded frame bytes queued for the wire per mode.", labels...),
		stalls:     m.Counter(telemetry.MetricTransportWriterStall, "Sends that blocked on a full writer queue.", labels...),
		timerFires: m.Counter(telemetry.MetricTransportTimerFires, "Transport timers fired.", labels...),
		pending:    m.Gauge(telemetry.MetricTransportPending, "In-flight work: queued frames, running handlers, armed timers.", labels...),
	})
}

func (t *Net) telemetrySink() *telemetry.Telemetry {
	t.telMu.Lock()
	defer t.telMu.Unlock()
	return t.tel
}

// Now returns elapsed wall time since construction — the transport's
// clock, analogous to simnet's virtual Now.
func (t *Net) Now() time.Duration { return time.Since(t.start) }

// Rand returns a pseudo-random int in [0, max) from the seeded stream.
// Unlike the simulator's, draws from concurrent handlers interleave
// nondeterministically; protocol decisions stay well-distributed but
// not replayable.
func (t *Net) Rand(max int) int {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.rng.Intn(max)
}

// Register attaches a handler to addr, creating the node: its
// listening socket, reader, and the single dispatcher goroutine that
// serializes its handler. Registering an existing address replaces the
// handler only.
func (t *Net) Register(addr transport.Addr, h transport.Handler) {
	t.mu.Lock()
	if n := t.nodes[addr]; n != nil {
		t.mu.Unlock()
		n.setHandler(h)
		return
	}
	n := &node{addr: addr, inbox: make(chan item, t.opts.InboxDepth), h: h}
	t.nodes[addr] = n
	t.mu.Unlock()

	t.listen(n)
	t.wg.Add(1)
	go t.dispatch(n)
}

// listen opens the node's endpoint for the configured mode and starts
// its readers. Loopback listen failures are environmental; they are
// recorded and surfaced by sends to this node.
func (t *Net) listen(n *node) {
	switch t.opts.Mode {
	case ModeUDP:
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			n.lnErr = err
			return
		}
		_ = conn.SetReadBuffer(4 << 20)
		n.udpConn = conn
		n.udpAddr = conn.LocalAddr().(*net.UDPAddr)
		t.wg.Add(1)
		go t.readUDP(n)
	case ModeHTTP:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			n.lnErr = err
			return
		}
		mux := http.NewServeMux()
		mux.HandleFunc("POST /frames", func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(io.LimitReader(r.Body, 2*MaxFramePayload))
			if err != nil {
				http.Error(w, "read error", http.StatusBadRequest)
				return
			}
			t.deliverBatch(body)
			w.WriteHeader(http.StatusOK)
		})
		n.httpSrv = &http.Server{Handler: mux}
		n.baseURL = "http://" + ln.Addr().String()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			_ = n.httpSrv.Serve(ln)
		}()
	default: // ModeTCP
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			n.lnErr = err
			return
		}
		n.tcpLn = ln
		n.dialTo = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptTCP(n)
	}
}

// dispatch is a node's single dispatcher: every inbound datagram and
// every owned timer runs here, serialized — the same guarantee the
// simulator's event loop gives its handlers.
func (t *Net) dispatch(n *node) {
	defer t.wg.Done()
	view := &nodeView{t: t, n: n}
	for {
		select {
		case <-t.stop:
			return
		case it := <-n.inbox:
			if ih := t.instr.Load(); ih != nil {
				if n.depthGauge == nil {
					n.depthGauge = ih.tel.Metrics().Gauge(telemetry.MetricTransportInboxDepth,
						"Dispatch-queue depth per node, sampled at dequeue.",
						append(ih.tel.BaseLabels(), telemetry.A("node", string(n.addr)))...)
				}
				n.depthGauge.Set(float64(len(n.inbox)))
				if it.fire != nil {
					ih.timerFires.Add(1)
				}
			}
			if it.fire != nil {
				it.fire()
				t.finish(1)
				continue
			}
			t.recordDelivery(it.msg)
			if h := n.handler(); h != nil {
				h(view, it.msg)
			}
			t.finish(1)
		}
	}
}

// finish releases n units of pending work and mirrors the new level
// into the pending gauge when instrumented.
func (t *Net) finish(n int64) {
	level := t.pending.Add(-n)
	if ih := t.instr.Load(); ih != nil {
		ih.pending.Set(float64(level))
	}
}

func (t *Net) recordDelivery(msg transport.Message) {
	t.delivered.Add(1)
	if !t.opts.DisableCapture {
		t.capMu.Lock()
		t.capture = append(t.capture, transport.PacketRecord{
			Time: t.Now(), Src: msg.Src, Dst: msg.Dst, Size: len(msg.Payload),
		})
		t.capMu.Unlock()
	}
	if tel := t.telemetrySink(); tel != nil {
		src, dst := telemetry.A("src", string(msg.Src)), telemetry.A("dst", string(msg.Dst))
		tel.Count(telemetry.MetricTransportMessages, "Datagrams delivered per link (real transport).", 1, src, dst)
		tel.Count(telemetry.MetricTransportBytes, "Payload bytes delivered per link (real transport).", uint64(len(msg.Payload)), src, dst)
	}
}

// dropFrames accounts n in-flight frames the wire ate (write error,
// closed transport, unroutable destination).
func (t *Net) dropFrames(n int, reason string) {
	if n <= 0 {
		return
	}
	t.lost.Add(uint64(n))
	t.finish(int64(n))
	if tel := t.telemetrySink(); tel != nil {
		tel.Count(telemetry.MetricTransportLost, "Datagrams lost on the real transport.", uint64(n),
			telemetry.A("reason", reason))
	}
}

// Send encodes a frame and queues it on the destination endpoint's
// writer pool. It fails fast on unregistered destinations and fails
// closed (ErrClosed) after Close; queued frames travel the real wire
// and are delivered by the destination node's dispatcher.
func (t *Net) Send(src, dst transport.Addr, payload []byte) error {
	return t.SendTraced(src, dst, payload, wiretrace.Context{})
}

// SendTraced is Send with a wire-trace context riding in the frame
// codec's v2 trace extension — out-of-band of the payload, so traced
// and untraced frames carry byte-identical payloads.
func (t *Net) SendTraced(src, dst transport.Addr, payload []byte, ctx wiretrace.Context) error {
	if t.closed.Load() {
		return fmt.Errorf("nettransport: send %s->%s: %w", src, dst, ErrClosed)
	}
	t.mu.Lock()
	n, ok := t.nodes[dst]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("nettransport: send to unregistered node %q", dst)
	}
	if n.lnErr != nil {
		return fmt.Errorf("nettransport: send to %q: %w", dst, n.lnErr)
	}
	frame, err := AppendFrame(nil, transport.Message{Src: src, Dst: dst, Payload: payload, Trace: ctx})
	if err != nil {
		return err
	}
	q := t.queueFor(dst, n)
	level := t.pending.Add(1)
	ih := t.instr.Load()
	if ih != nil {
		ih.framesSent.Add(1)
		ih.bytesSent.Add(uint64(len(frame)))
		ih.pending.Set(float64(level))
	}
	// Fast path: queue has room. Falling through to the blocking wait is
	// a writer-queue stall — the wire (or its writer pool) is not
	// keeping up with producers — which the live plane counts.
	select {
	case q.ch <- frame:
		return nil
	default:
	}
	if ih != nil {
		ih.stalls.Add(1)
	}
	select {
	case q.ch <- frame:
		return nil
	case <-t.stop:
		t.dropFrames(1, "closed")
		return fmt.Errorf("nettransport: send %s->%s: %w", src, dst, ErrClosed)
	}
}

// queueFor returns the destination's writer queue, starting its worker
// pool on first use.
func (t *Net) queueFor(dst transport.Addr, n *node) *outQueue {
	t.outMu.Lock()
	defer t.outMu.Unlock()
	if q := t.out[dst]; q != nil {
		return q
	}
	q := &outQueue{ch: make(chan []byte, 4096)}
	t.out[dst] = q
	workers := t.opts.Workers
	if t.opts.Mode == ModeTCP {
		workers = 1 // one writer per stream preserves per-destination FIFO
	}
	for i := 0; i < workers; i++ {
		t.wg.Add(1)
		switch t.opts.Mode {
		case ModeUDP:
			go t.udpWriter(q, n)
		case ModeHTTP:
			go t.httpWriter(q, n)
		default:
			go t.tcpWriter(q, n)
		}
	}
	return q
}

// nextBatch blocks for one frame then coalesces whatever else is
// queued, up to limit bytes, into a single write. Returns the batch
// and its frame count; nil on shutdown.
func (t *Net) nextBatch(q *outQueue, limit int) ([]byte, int) {
	var first []byte
	select {
	case <-t.stop:
		return nil, 0
	case first = <-q.ch:
	}
	batch := first
	count := 1
	for len(batch) < limit {
		select {
		case f := <-q.ch:
			batch = append(batch, f...)
			count++
		default:
			return batch, count
		}
	}
	return batch, count
}

func (t *Net) tcpWriter(q *outQueue, n *node) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		batch, count := t.nextBatch(q, t.opts.BatchBytes)
		if batch == nil {
			return
		}
		if conn == nil {
			c, err := net.Dial("tcp", n.dialTo)
			if err != nil {
				t.dropFrames(count, "dial")
				continue
			}
			conn = c
		}
		if _, err := conn.Write(batch); err != nil {
			conn.Close()
			conn = nil
			t.dropFrames(count, "write")
		}
	}
}

// maxUDPBatch keeps batched datagrams under the loopback UDP payload
// ceiling.
const maxUDPBatch = 60000

func (t *Net) udpWriter(q *outQueue, n *node) {
	defer t.wg.Done()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		// Without a send socket this worker can only drain and drop.
		for {
			_, count := t.nextBatch(q, maxUDPBatch)
			if count == 0 {
				return
			}
			t.dropFrames(count, "socket")
		}
	}
	defer conn.Close()
	_ = conn.SetWriteBuffer(4 << 20)
	for {
		batch, count := t.nextBatch(q, maxUDPBatch)
		if batch == nil {
			return
		}
		if _, err := conn.WriteToUDP(batch, n.udpAddr); err != nil {
			t.dropFrames(count, "write")
		}
	}
}

func (t *Net) httpWriter(q *outQueue, n *node) {
	defer t.wg.Done()
	for {
		batch, count := t.nextBatch(q, t.opts.BatchBytes)
		if batch == nil {
			return
		}
		resp, err := t.httpClient.Post(n.baseURL+"/frames", "application/octet-stream", bytes.NewReader(batch))
		if err != nil {
			t.dropFrames(count, "post")
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.dropFrames(count, "status")
		}
	}
}

func (t *Net) acceptTCP(n *node) {
	defer t.wg.Done()
	for {
		conn, err := n.tcpLn.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readTCP(conn)
	}
}

// readTCP decodes the stream one frame at a time: header first, then
// the exact frame body. Structural corruption drops the connection.
func (t *Net) readTCP(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	header := make([]byte, frameHeader, frameHeaderV2)
	for {
		header = header[:frameHeader]
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		// A v2 frame's length depends on the extension-length byte that
		// follows the common header; pull it before sizing the read.
		if need := headerLen(header); need > len(header) {
			header = header[:need]
			if _, err := io.ReadFull(conn, header[frameHeader:]); err != nil {
				return
			}
		}
		total := FrameLen(header)
		if total < frameHeader || total > frameHeaderV2+MaxTraceExt+2*MaxAddrLen+MaxFramePayload {
			return
		}
		buf := make([]byte, total)
		copy(buf, header)
		if _, err := io.ReadFull(conn, buf[len(header):]); err != nil {
			return
		}
		msg, _, err := DecodeFrame(buf)
		if err != nil {
			return
		}
		t.deliver(msg)
	}
}

func (t *Net) readUDP(n *node) {
	defer t.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		nr, _, err := n.udpConn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		t.deliverBatch(append([]byte(nil), buf[:nr]...))
	}
}

// deliverBatch decodes a concatenation of frames and delivers each.
func (t *Net) deliverBatch(b []byte) {
	for len(b) > 0 {
		msg, rest, err := DecodeFrame(b)
		if err != nil {
			return // trailing corruption: the valid prefix was delivered
		}
		b = rest
		t.deliver(msg)
	}
}

// deliver routes one decoded frame to its node's dispatcher. The
// sender's pending count transfers to the dispatcher, which releases
// it after the handler runs.
func (t *Net) deliver(msg transport.Message) {
	if t.closed.Load() {
		t.dropFrames(1, "closed")
		return
	}
	t.mu.Lock()
	n := t.nodes[msg.Dst]
	t.mu.Unlock()
	if n == nil {
		t.dropFrames(1, "unroutable")
		return
	}
	select {
	case n.inbox <- item{msg: msg}:
	case <-t.stop:
		t.dropFrames(1, "closed")
	}
}

// After schedules fn after delay. Armed outside any handler it runs on
// its own goroutine (the analogue of simnet's owner-less timers);
// handlers arm timers through their nodeView, which serializes them
// with the owning node.
func (t *Net) After(delay time.Duration, fn func()) {
	if t.closed.Load() {
		return
	}
	t.pending.Add(1)
	time.AfterFunc(delay, func() {
		defer t.finish(1)
		if ih := t.instr.Load(); ih != nil {
			ih.timerFires.Add(1)
		}
		if !t.closed.Load() {
			fn()
		}
	})
}

// Run waits until the transport quiesces — every accepted datagram
// delivered (or lost) and every armed timer fired — and returns the
// number of messages delivered during this call. Unlike the simulator,
// where nothing moves before Run, a real wire delivers concurrently
// with sending: messages handled before Run is entered are not in its
// return value, so callers wanting totals read Delivered, not Run's
// delta. If in-flight work
// makes no progress for StallTimeout (possible only where the wire
// itself drops silently, i.e. UDP), Run stops waiting and returns.
func (t *Net) Run() uint64 {
	startDelivered := t.delivered.Load()
	lastSeen := startDelivered + t.lost.Load()
	lastProgress := time.Now()
	for {
		if t.closed.Load() || t.pending.Load() == 0 {
			break
		}
		time.Sleep(200 * time.Microsecond)
		if cur := t.delivered.Load() + t.lost.Load(); cur != lastSeen {
			lastSeen = cur
			lastProgress = time.Now()
			continue
		}
		if time.Since(lastProgress) > t.opts.StallTimeout {
			break
		}
	}
	return t.delivered.Load() - startDelivered
}

// Capture returns a copy of the passive observer's packet records
// (empty when DisableCapture is set).
func (t *Net) Capture() []transport.PacketRecord {
	t.capMu.Lock()
	defer t.capMu.Unlock()
	return append([]transport.PacketRecord(nil), t.capture...)
}

// Delivered returns the all-time count of delivered messages.
func (t *Net) Delivered() uint64 { return t.delivered.Load() }

// Lost returns the all-time count of messages the transport ate.
func (t *Net) Lost() uint64 { return t.lost.Load() }

// Pending reports in-flight work (queued frames, running handlers,
// armed timers).
func (t *Net) Pending() int { return int(t.pending.Load()) }

// Close shuts the transport down: subsequent Sends fail closed with
// ErrClosed, listeners and dispatchers stop, and sockets are released.
// In-flight work is dropped, never handed to any fallback path.
func (t *Net) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.stop)
	t.mu.Lock()
	nodes := make([]*node, 0, len(t.nodes))
	for _, n := range t.nodes {
		nodes = append(nodes, n)
	}
	t.mu.Unlock()
	for _, n := range nodes {
		if n.tcpLn != nil {
			n.tcpLn.Close()
		}
		if n.udpConn != nil {
			n.udpConn.Close()
		}
		if n.httpSrv != nil {
			n.httpSrv.Close()
		}
	}
	t.httpClient.CloseIdleConnections()
	t.wg.Wait()
	return nil
}

// nodeView is the Transport a node's handler runs against: Sends pass
// through, timers belong to the node — they run on its dispatcher,
// serialized with its handler, mirroring simnet's timer ownership.
type nodeView struct {
	t *Net
	n *node
}

var _ transport.Transport = (*nodeView)(nil)
var _ transport.ContextSender = (*nodeView)(nil)

func (v *nodeView) Send(src, dst transport.Addr, payload []byte) error {
	return v.t.Send(src, dst, payload)
}
func (v *nodeView) SendTraced(src, dst transport.Addr, payload []byte, ctx wiretrace.Context) error {
	return v.t.SendTraced(src, dst, payload, ctx)
}
func (v *nodeView) Register(addr transport.Addr, h transport.Handler) { v.t.Register(addr, h) }
func (v *nodeView) Now() time.Duration                                { return v.t.Now() }
func (v *nodeView) Rand(max int) int                                  { return v.t.Rand(max) }

func (v *nodeView) After(delay time.Duration, fn func()) {
	t := v.t
	if t.closed.Load() {
		return
	}
	t.pending.Add(1)
	time.AfterFunc(delay, func() {
		select {
		case v.n.inbox <- item{fire: fn}:
		case <-t.stop:
			t.finish(1)
		}
	})
}
