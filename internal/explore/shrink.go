package explore

import (
	"strings"

	"decoupling/internal/simnet"
)

// Shrinking: delta-debug a violating case down to a locally-minimal
// counterexample that still violates the SAME oracle. The reduction
// passes, in order:
//
//  1. clients — try 1, then half, then one fewer;
//  2. fault clauses — try dropping each spec clause;
//  3. schedules — try dropping a whole net's trace, truncating it to
//     its first half, or zeroing one decision back to canonical.
//
// Every accepted candidate strictly decreases (events, nonzero
// scheduling decisions) lexicographically, so the loop terminates; the
// passes repeat until a full sweep accepts nothing. Candidate order is
// fixed, so shrinking is deterministic: the same violating case always
// minimizes to the same trace.

// shrinkRunner executes a candidate in replay mode and returns the
// violations it produces (the caseRun is reused to re-record the final
// minimized schedule).
type shrinkRunner func(cand *Trace) (*caseRun, []Violation, error)

// nonzeroDecisions counts scheduling decisions that divert from the
// canonical order — the secondary minimization metric.
func nonzeroDecisions(t *Trace) int {
	n := 0
	for _, s := range t.Schedules {
		for _, pick := range s {
			if pick != 0 {
				n++
			}
		}
	}
	return n
}

// reproduces reports whether cand still violates oracle under run.
func reproduces(run shrinkRunner, cand *Trace, oracle string) bool {
	_, vs, err := run(cand)
	if err != nil {
		return oracle == OracleReproduction
	}
	for _, v := range vs {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

// shrinkWith minimizes t against run, preserving t.Oracle. t is not
// mutated; the returned trace carries the re-recorded canonical
// schedule and refreshed violation detail.
func shrinkWith(run shrinkRunner, t *Trace) *Trace {
	cur := cloneTrace(t)
	better := func(cand *Trace) bool {
		ce, ne := cand.Events(), cur.Events()
		if ce != ne {
			return ce < ne
		}
		return nonzeroDecisions(cand) < nonzeroDecisions(cur)
	}
	try := func(cand *Trace) bool {
		cand.Schedules = normalizeSchedules(cand.Schedules)
		if !better(cand) || !reproduces(run, cand, cur.Oracle) {
			return false
		}
		cur = cand
		return true
	}

	for improved := true; improved; {
		improved = false

		// Pass 1: client count.
		for _, c := range []int{1, cur.Clients / 2, cur.Clients - 1} {
			if c < 1 || c >= cur.Clients {
				continue
			}
			cand := cloneTrace(cur)
			cand.Clients = c
			if try(cand) {
				improved = true
				break
			}
		}

		// Pass 2: drop fault clauses.
		if clauses := splitClauses(cur.Faults); len(clauses) > 0 {
			for i := range clauses {
				cand := cloneTrace(cur)
				cand.Faults = joinClauses(clauses, i)
				if try(cand) {
					improved = true
					break
				}
			}
		}

		// Pass 3: schedules — drop a net, truncate to half, or zero one
		// divergent decision.
		for i := range cur.Schedules {
			s := cur.Schedules[i]
			if len(s) == 0 {
				continue
			}
			cand := cloneTrace(cur)
			cand.Schedules[i] = nil
			if try(cand) {
				improved = true
				break
			}
			cand = cloneTrace(cur)
			cand.Schedules[i] = s[:len(s)/2]
			if try(cand) {
				improved = true
				break
			}
			for j, pick := range s {
				if pick == 0 {
					continue
				}
				cand = cloneTrace(cur)
				cand.Schedules[i][j] = 0
				if try(cand) {
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
	}

	// Re-record the minimized case so the trace carries the canonical
	// replay script and the surviving violation detail.
	if rec, vs, err := run(cur); err == nil {
		cur.Schedules = rec.schedules
		cur.Detail = nil
		for _, v := range vs {
			if v.Oracle == cur.Oracle {
				cur.Detail = append(cur.Detail, v.Detail)
			}
		}
	}
	return cur
}

// cloneTrace deep-copies a trace (schedules included, so candidates
// can be mutated in place).
func cloneTrace(t *Trace) *Trace {
	c := *t
	c.Schedules = make([]simnet.ScheduleTrace, len(t.Schedules))
	for i, s := range t.Schedules {
		c.Schedules[i] = append(simnet.ScheduleTrace(nil), s...)
	}
	c.Detail = append([]string(nil), t.Detail...)
	return &c
}

// splitClauses splits a fault spec into clauses ("" -> none).
func splitClauses(spec string) []string {
	if spec == "" {
		return nil
	}
	return strings.Split(spec, ";")
}

// joinClauses rebuilds a spec with clause drop removed.
func joinClauses(clauses []string, drop int) string {
	out := make([]string, 0, len(clauses)-1)
	for i, c := range clauses {
		if i != drop {
			out = append(out, c)
		}
	}
	return strings.Join(out, ";")
}
