package explore

import (
	"bytes"
	"fmt"
	"sync"

	"decoupling/internal/core"
	"decoupling/internal/experiments"
	"decoupling/internal/ledger"
	"decoupling/internal/provenance"
	"decoupling/internal/simnet"
)

// caseRun is one execution of an explored case: the quiesced ledger
// plus the scheduling decisions every constructed net recorded.
type caseRun struct {
	lg        *ledger.Ledger
	schedules []simnet.ScheduleTrace // canonicalized, per net index
	decisions int                    // total multi-choice decision points
}

// netRecorder is the Ctx hook state shared by record and replay runs:
// it keeps every constructed net, indexed by construction order, so
// recorded schedules can be harvested after quiescence.
type netRecorder struct {
	mu   sync.Mutex
	nets []*simnet.Network
}

func (r *netRecorder) add(idx int, n *simnet.Network) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.nets) <= idx {
		r.nets = append(r.nets, nil)
	}
	r.nets[idx] = n
}

// harvest returns the canonicalized recorded schedule per net and the
// total decision count.
func (r *netRecorder) harvest() ([]simnet.ScheduleTrace, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	raw := make([]simnet.ScheduleTrace, len(r.nets))
	decisions := 0
	for i, n := range r.nets {
		if n == nil {
			continue
		}
		raw[i] = n.RecordedSchedule()
		decisions += len(raw[i])
	}
	return normalizeSchedules(raw), decisions
}

// exploreCtx builds the experiment Ctx for one case execution. In
// record mode (replay=false) each net gets a seeded scheduler derived
// from (t.Seed, net index); in replay mode net i replays t.Schedules[i]
// (canonical when absent — which is what makes shrunk traces runnable).
func exploreCtx(t *Trace, replay bool) (experiments.Ctx, *netRecorder) {
	rec := &netRecorder{}
	ctx := experiments.WithNetHook(nil, func(idx int, n *simnet.Network) {
		rec.add(idx, n)
		if replay {
			var tr simnet.ScheduleTrace
			if idx < len(t.Schedules) {
				tr = t.Schedules[idx]
			}
			n.ReplaySchedule(tr)
		} else {
			n.SetScheduler(simnet.NewSeededScheduler(schedSeed(t.Seed, idx)))
		}
	})
	return ctx, rec
}

// runCase executes a probe case and harvests its schedules. Panics in
// probe code are converted to errors so one pathological case cannot
// kill a sweep.
func runCase(probe experiments.ExploreProbe, t *Trace, parallel int, replay bool) (run *caseRun, err error) {
	plan, err := t.Plan()
	if err != nil {
		return nil, fmt.Errorf("case fault plan: %w", err)
	}
	ctx, rec := exploreCtx(t, replay)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("probe %s panicked: %v", probe.ID, p)
		}
	}()
	lg, err := probe.Run(ctx, parallel, t.Clients, plan)
	if err != nil {
		return nil, err
	}
	schedules, decisions := rec.harvest()
	return &caseRun{lg: lg, schedules: schedules, decisions: decisions}, nil
}

// canonicalClients is the probe's paper-table client count — the count
// the tuple-equality oracle assumes.
func canonicalClients(probe experiments.ExploreProbe) int {
	if probe.MaxClients < 1 {
		return 1
	}
	return probe.MaxClients
}

// healthyCase reports whether a case may assert tuple EQUALITY against
// the paper (no faults, canonical client count); every other case gets
// only the subsumption oracles.
func healthyCase(probe experiments.ExploreProbe, t *Trace) bool {
	return t.Faults == "" && t.Clients == canonicalClients(probe)
}

// auditBytes renders the provenance audit of a quiesced ledger — the
// byte surface the determinism oracle compares across record and
// replay runs.
func auditBytes(lg *ledger.Ledger, expected *core.System) ([]byte, error) {
	a, err := provenance.Derive(lg, expected)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := provenance.WriteReport(&buf, a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// equalSchedules compares canonicalized schedule sets.
func equalSchedules(a, b []simnet.ScheduleTrace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// checkDeterminism replays a recorded case and asserts the replay is a
// fixpoint: identical re-recorded schedules and identical provenance
// audit bytes. Any divergence is an OracleDeterminism violation.
func checkDeterminism(probe experiments.ExploreProbe, t *Trace, parallel int, rec *caseRun) []Violation {
	replayT := *t
	replayT.Schedules = rec.schedules
	rerun, err := runCase(probe, &replayT, parallel, true)
	if err != nil {
		return []Violation{{OracleDeterminism, "replaying recorded case: " + err.Error()}}
	}
	if !equalSchedules(rerun.schedules, rec.schedules) {
		return []Violation{{OracleDeterminism, fmt.Sprintf(
			"replay re-recorded a different schedule: %v, recorded %v", rerun.schedules, rec.schedules)}}
	}
	want, err := auditBytes(rec.lg, probe.Expected())
	if err != nil {
		return []Violation{{OracleDeterminism, "deriving recorded audit: " + err.Error()}}
	}
	got, err := auditBytes(rerun.lg, probe.Expected())
	if err != nil {
		return []Violation{{OracleDeterminism, "deriving replayed audit: " + err.Error()}}
	}
	if !bytes.Equal(want, got) {
		return []Violation{{OracleDeterminism, "replayed audit differs from recorded audit"}}
	}
	return nil
}
