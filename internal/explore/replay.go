package explore

import (
	"fmt"
	"strings"

	"decoupling/internal/experiments"
)

// ReplayResult is one trace replay: the violations the replayed
// execution produced, whether the recorded oracle reproduced, and the
// execution's human-readable artifact (provenance audit for probe
// traces, experiment report for experiment traces).
type ReplayResult struct {
	Trace      *Trace
	Violations []Violation
	// Reproduced reports whether the trace's recorded oracle fired
	// again under replay (vacuously false when the trace records none).
	Reproduced bool
	// Artifact is the audit or experiment report of the replayed run.
	Artifact string
}

// Replay re-executes a serialized counterexample: the trace's probe or
// experiment runs once under the recorded schedules (canonical where
// the trace is silent), faults, and client count, then the oracle
// library is asserted. Output is byte-identical across parallel values.
func Replay(t *Trace, parallel int) (*ReplayResult, error) {
	if parallel < 1 {
		parallel = 1
	}
	if probe, ok := experiments.FindExploreProbe(t.Probe); ok {
		return replayProbe(probe, t, parallel)
	}
	for _, c := range DefaultExperimentCases() {
		if c.Exp.ID == t.Probe {
			return replayExperiment(c, t)
		}
	}
	return nil, fmt.Errorf("explore: trace names no known probe or experiment %q", t.Probe)
}

func replayProbe(probe experiments.ExploreProbe, t *Trace, parallel int) (*ReplayResult, error) {
	run, err := runCase(probe, t, parallel, true)
	if err != nil {
		if t.Oracle == OracleReproduction {
			return &ReplayResult{Trace: t, Reproduced: true,
				Violations: []Violation{{OracleReproduction, err.Error()}}}, nil
		}
		return nil, err
	}
	res := &ReplayResult{Trace: t, Violations: Check(run.lg, probe.Expected(), healthyCase(probe, t))}
	audit, err := auditBytes(run.lg, probe.Expected())
	if err != nil {
		return nil, err
	}
	res.Artifact = string(audit)
	res.Reproduced = violatesOracle(res.Violations, t.Oracle)
	return res, nil
}

func replayExperiment(ec ExperimentCase, t *Trace) (*ReplayResult, error) {
	run, err := runExperimentSeed(ec.Exp, t, true)
	if err != nil {
		if t.Oracle == OracleReproduction {
			return &ReplayResult{Trace: t, Reproduced: true,
				Violations: []Violation{{OracleReproduction, err.Error()}}}, nil
		}
		return nil, err
	}
	res := &ReplayResult{Trace: t, Artifact: run.res.Render()}
	if !run.res.Pass {
		res.Violations = append(res.Violations, Violation{OracleReproduction,
			"experiment reports FAIL under replayed schedule"})
	}
	if !ec.SkipLedgerOracles && run.res.Ledger != nil && run.res.Expected != nil {
		res.Violations = append(res.Violations, Check(run.res.Ledger, run.res.Expected, ec.Healthy)...)
	}
	res.Reproduced = violatesOracle(res.Violations, t.Oracle)
	return res, nil
}

func violatesOracle(vs []Violation, oracle string) bool {
	for _, v := range vs {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

// Render formats a replay for the terminal: the case header, the
// violations the replay produced, the recorded-oracle verdict, and the
// execution artifact.
func (r *ReplayResult) Render() string {
	var b strings.Builder
	t := r.Trace
	fmt.Fprintf(&b, "replaying %s (seed %d)\n", t.Probe, t.Seed)
	fmt.Fprintf(&b, "clients=%d faults=%q schedule=%s\n", t.Clients, t.Faults, renderSchedules(t.Schedules))
	if len(r.Violations) == 0 {
		b.WriteString("\nno oracle violations under replay\n")
	} else {
		b.WriteString("\nviolations:\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	switch {
	case t.Oracle == "":
		// Trace records no oracle; nothing to confirm.
	case t.Oracle == OracleDeterminism:
		fmt.Fprintf(&b, "recorded oracle %s: not checkable by a single replay\n", t.Oracle)
	case r.Reproduced:
		fmt.Fprintf(&b, "recorded oracle %s: REPRODUCED\n", t.Oracle)
	default:
		fmt.Fprintf(&b, "recorded oracle %s: did not reproduce\n", t.Oracle)
	}
	if r.Artifact != "" {
		b.WriteString("\n")
		b.WriteString(r.Artifact)
	}
	return b.String()
}
