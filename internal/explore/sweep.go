package explore

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"decoupling/internal/experiments"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
)

// ExperimentCase wraps a registered experiment for the sweep with the
// oracle configuration its retained ledger supports.
type ExperimentCase struct {
	Exp experiments.Experiment
	// Healthy asserts paper-table tuple EQUALITY on the retained
	// ledger. False for the chaos experiments, whose internal fault
	// injection legitimately erases knowledge (subsumption oracles
	// still apply).
	Healthy bool
	// SkipLedgerOracles exempts the retained ledger entirely: E16
	// retains the fail-open counterexample ledger, whose COUPLED
	// verdict is the experiment's point, not a bug. The probe
	// "odoh-failopen" covers that surface for the explorer.
	SkipLedgerOracles bool
	// SkipAuditDeterminism exempts the audit-byte comparison only: the
	// real-loopback experiments (E6, E8) observe kernel-assigned
	// ephemeral ports, so their linkage-handle aliases are
	// run-dependent. Their rendered reports and schedules must still
	// replay byte-for-byte.
	SkipAuditDeterminism bool
}

// DefaultExperimentCases wraps every registered experiment with its
// sweep configuration.
func DefaultExperimentCases() []ExperimentCase {
	var out []ExperimentCase
	for _, e := range experiments.All() {
		c := ExperimentCase{Exp: e, Healthy: true}
		switch e.ID {
		case "E6", "E8":
			c.SkipAuditDeterminism = true
		case "E14", "E15":
			c.Healthy = false
		case "E16":
			c.Healthy = false
			c.SkipLedgerOracles = true
		}
		out = append(out, c)
	}
	return out
}

// Options configures a sweep.
type Options struct {
	// Seeds is the sweep's seed list (SeedList builds the standard
	// contiguous one). Required.
	Seeds []uint64
	// Probes are the fault-tolerant scenarios explored with synthesized
	// faults AND permuted schedules.
	Probes []experiments.ExploreProbe
	// Experiments are explored with permuted schedules only.
	Experiments []ExperimentCase
	// Workers sizes the case worker pool (default GOMAXPROCS).
	Workers int
	// Parallel is the client-goroutine fan-out inside each probe run
	// (results are byte-identical across values; default 1).
	Parallel int
	// Tel receives the sweep counters (cases, decision points,
	// violations, shrink runs); nil disables them. The report bytes do
	// not depend on it.
	Tel *telemetry.Telemetry
}

// SeedList returns the standard contiguous seed list [base, base+n).
func SeedList(base uint64, n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, base+uint64(i))
	}
	return out
}

// Summary is one probe's or experiment's sweep outcome.
type Summary struct {
	Kind  string // "probe" or "experiment"
	ID    string
	Cases int
	// ViolSeeds lists the seeds whose case violated any oracle.
	ViolSeeds []uint64
	// Planted marks the deliberately misconfigured probe: violations
	// there are the explorer finding its target, not bugs.
	Planted bool
	// ScheduleIndependent marks an experiment whose canonical run hit
	// zero decision points — every admissible schedule is the canonical
	// one, so a single seed covers the space.
	ScheduleIndependent bool
}

// Finding is one violating case, minimized where the violation is
// replayable (everything except determinism violations, which cannot
// be validated by replay).
type Finding struct {
	Kind           string
	ID             string
	Seed           uint64
	Planted        bool
	Violations     []Violation
	Trace          *Trace
	OriginalEvents int
}

// Report is a completed sweep. Render is byte-deterministic for a
// fixed Options (independent of Workers and wall time).
type Report struct {
	Seeds     []uint64
	Decisions int
	Summaries []Summary
	Findings  []Finding
}

// Sweep explores every (probe x seed) and (experiment x seed) case and
// minimizes the first violating case per probe/experiment.
func Sweep(o Options) *Report {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	r := &Report{Seeds: o.Seeds}

	type probeCase struct {
		vs        []Violation
		trace     *Trace
		decisions int
	}
	probeResults := make([][]probeCase, len(o.Probes))
	for i := range probeResults {
		probeResults[i] = make([]probeCase, len(o.Seeds))
	}
	expOut := make([]expSweep, len(o.Experiments))

	// Work items: one per (probe, seed) pair; one per experiment (the
	// seed loop is sequential inside so the schedule-independence
	// short-circuit can stop it).
	type work func()
	var queue []work
	for pi, probe := range o.Probes {
		for si, seed := range o.Seeds {
			pi, si, probe, seed := pi, si, probe, seed
			queue = append(queue, func() {
				t := synthCase(probe, seed)
				vs, run := checkProbeCase(probe, t, o.Parallel)
				pc := probeCase{vs: vs, trace: t}
				if run != nil {
					pc.decisions = run.decisions
					t.Schedules = run.schedules
				}
				probeResults[pi][si] = pc
			})
		}
	}
	for ei, ec := range o.Experiments {
		ei, ec := ei, ec
		queue = append(queue, func() {
			expOut[ei] = sweepExperiment(ec, o.Seeds)
		})
	}

	var wg sync.WaitGroup
	next := make(chan work)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fn := range next {
				fn()
			}
		}()
	}
	for _, fn := range queue {
		next <- fn
	}
	close(next)
	wg.Wait()

	// Fold probe results in (probe, seed) order.
	shrinkRuns := 0
	for pi, probe := range o.Probes {
		s := Summary{Kind: "probe", ID: probe.ID, Cases: len(o.Seeds), Planted: !probe.FailClosed}
		var first *Finding
		for si, seed := range o.Seeds {
			pc := probeResults[pi][si]
			r.Decisions += pc.decisions
			if len(pc.vs) == 0 {
				continue
			}
			s.ViolSeeds = append(s.ViolSeeds, seed)
			if first == nil {
				first = &Finding{Kind: "probe", ID: probe.ID, Seed: seed,
					Planted: !probe.FailClosed, Violations: pc.vs, Trace: pc.trace,
					OriginalEvents: pc.trace.Events()}
			}
		}
		if first != nil {
			shrinkRuns += minimizeProbeFinding(probe, first, o.Parallel)
			r.Findings = append(r.Findings, *first)
		}
		r.Summaries = append(r.Summaries, s)
	}
	for ei, ec := range o.Experiments {
		out := expOut[ei]
		s := Summary{Kind: "experiment", ID: ec.Exp.ID, Cases: out.cases,
			ViolSeeds: out.violSeeds, ScheduleIndependent: out.scheduleIndependent}
		r.Decisions += out.decisions
		if out.first != nil {
			shrinkRuns += minimizeExperimentFinding(ec, out.first)
			r.Findings = append(r.Findings, *out.first)
		}
		r.Summaries = append(r.Summaries, s)
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].Kind != r.Findings[j].Kind {
			return r.Findings[i].Kind > r.Findings[j].Kind // probes first
		}
		return r.Findings[i].ID < r.Findings[j].ID
	})

	for _, s := range r.Summaries {
		kind, id := telemetry.A("kind", s.Kind), telemetry.A("id", s.ID)
		o.Tel.Count(telemetry.MetricExploreCases,
			"Explored cases per probe/experiment.", uint64(s.Cases), kind, id)
		if len(s.ViolSeeds) > 0 {
			o.Tel.Count(telemetry.MetricExploreViolations,
				"Cases violating any invariant oracle.", uint64(len(s.ViolSeeds)), kind, id)
		}
	}
	o.Tel.Count(telemetry.MetricExploreDecisions,
		"Schedule decision points explored across the sweep.", uint64(r.Decisions))
	if shrinkRuns > 0 {
		o.Tel.Count(telemetry.MetricExploreShrinkRuns,
			"Candidate executions spent minimizing counterexamples.", uint64(shrinkRuns))
	}
	return r
}

// checkProbeCase records one probe case, runs the oracle library, and
// appends the determinism check. The trace's Oracle/Detail fields are
// stamped from the first violation.
func checkProbeCase(probe experiments.ExploreProbe, t *Trace, parallel int) ([]Violation, *caseRun) {
	run, err := runCase(probe, t, parallel, false)
	if err != nil {
		vs := []Violation{{OracleReproduction, err.Error()}}
		stampTrace(t, vs)
		return vs, nil
	}
	vs := Check(run.lg, probe.Expected(), healthyCase(probe, t))
	vs = append(vs, checkDeterminism(probe, t, parallel, run)...)
	stampTrace(t, vs)
	return vs, run
}

// stampTrace records the first violated oracle (and its detail lines)
// on the trace, so shrinking holds the counterexample to that oracle.
func stampTrace(t *Trace, vs []Violation) {
	if len(vs) == 0 {
		return
	}
	t.Oracle = vs[0].Oracle
	for _, v := range vs {
		if v.Oracle == t.Oracle {
			t.Detail = append(t.Detail, v.Detail)
		}
	}
}

// minimizeProbeFinding shrinks a probe finding in place (determinism
// violations are reported unshrunk — a nondeterministic case cannot be
// validated by replay). It returns the number of candidate executions
// the shrink spent.
func minimizeProbeFinding(probe experiments.ExploreProbe, f *Finding, parallel int) int {
	if f.Trace.Oracle == OracleDeterminism {
		return 0
	}
	runs := 0
	runner := func(cand *Trace) (*caseRun, []Violation, error) {
		runs++
		run, err := runCase(probe, cand, parallel, true)
		if err != nil {
			return nil, nil, err
		}
		return run, Check(run.lg, probe.Expected(), healthyCase(probe, cand)), nil
	}
	f.Trace = shrinkWith(runner, f.Trace)
	return runs
}

// expSweep is one experiment's fold across the seed list.
type expSweep struct {
	cases               int
	decisions           int
	violSeeds           []uint64
	first               *Finding
	scheduleIndependent bool
}

// expRun is one experiment execution under a hooked Ctx.
type expRun struct {
	res       *experiments.Result
	schedules []simnet.ScheduleTrace
	decisions int
}

// runExperimentSeed executes an experiment with either a seeded
// scheduler (record mode) or a replayed schedule per net.
func runExperimentSeed(exp experiments.Experiment, t *Trace, replay bool) (run *expRun, err error) {
	ctx, rec := exploreCtx(t, replay)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s panicked: %v", exp.ID, p)
		}
	}()
	res, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	schedules, decisions := rec.harvest()
	return &expRun{res: res, schedules: schedules, decisions: decisions}, nil
}

// checkExperimentCase runs one (experiment, seed) case and its oracle
// library: reproduction (no error, PASS holds), the ledger oracles the
// case's configuration admits, and determinism (replaying the recorded
// schedules reproduces the report and audit byte-for-byte).
func checkExperimentCase(ec ExperimentCase, t *Trace) ([]Violation, *expRun) {
	run, err := runExperimentSeed(ec.Exp, t, false)
	if err != nil {
		vs := []Violation{{OracleReproduction, err.Error()}}
		stampTrace(t, vs)
		return vs, nil
	}
	var vs []Violation
	if !run.res.Pass {
		vs = append(vs, Violation{OracleReproduction,
			"experiment reports FAIL under explored schedule"})
	}
	checkLedger := !ec.SkipLedgerOracles && run.res.Ledger != nil && run.res.Expected != nil
	if checkLedger {
		vs = append(vs, Check(run.res.Ledger, run.res.Expected, ec.Healthy)...)
	}

	// Determinism: replay the recorded schedules and compare the
	// rendered report, the re-recorded schedules, and (when retained)
	// the provenance audit.
	replayT := *t
	replayT.Schedules = run.schedules
	rerun, err := runExperimentSeed(ec.Exp, &replayT, true)
	switch {
	case err != nil:
		vs = append(vs, Violation{OracleDeterminism, "replaying recorded case: " + err.Error()})
	case !equalSchedules(rerun.schedules, run.schedules):
		vs = append(vs, Violation{OracleDeterminism, fmt.Sprintf(
			"replay re-recorded a different schedule: %v, recorded %v", rerun.schedules, run.schedules)})
	case run.res.Render() != rerun.res.Render():
		vs = append(vs, Violation{OracleDeterminism, "replayed report differs from recorded report"})
	case checkLedger && !ec.SkipAuditDeterminism:
		want, werr := auditBytes(run.res.Ledger, run.res.Expected)
		got, gerr := auditBytes(rerun.res.Ledger, rerun.res.Expected)
		if werr != nil || gerr != nil || !bytes.Equal(want, got) {
			vs = append(vs, Violation{OracleDeterminism, "replayed audit differs from recorded audit"})
		}
	}
	t.Schedules = run.schedules
	stampTrace(t, vs)
	return vs, run
}

// sweepExperiment explores one experiment across the seed list,
// stopping after the first seed when the canonical run has no decision
// points (no admissible schedule differs from canonical).
func sweepExperiment(ec ExperimentCase, seeds []uint64) expSweep {
	var out expSweep
	for _, seed := range seeds {
		t := &Trace{Format: TraceFormat, Probe: ec.Exp.ID, Seed: seed}
		vs, run := checkExperimentCase(ec, t)
		out.cases++
		if run != nil {
			out.decisions += run.decisions
		}
		if len(vs) > 0 {
			out.violSeeds = append(out.violSeeds, seed)
			if out.first == nil {
				out.first = &Finding{Kind: "experiment", ID: ec.Exp.ID, Seed: seed,
					Violations: vs, Trace: t, OriginalEvents: t.Events()}
			}
		}
		if out.cases == 1 && run != nil && run.decisions == 0 {
			out.scheduleIndependent = true
			return out
		}
	}
	return out
}

// minimizeExperimentFinding shrinks an experiment finding's schedules
// (experiments have no synthesized clients or faults to reduce). It
// returns the number of candidate executions the shrink spent.
func minimizeExperimentFinding(ec ExperimentCase, f *Finding) int {
	if f.Trace.Oracle == OracleDeterminism || f.Trace.Oracle == "" {
		return 0
	}
	runs := 0
	runner := func(cand *Trace) (*caseRun, []Violation, error) {
		runs++
		run, err := runExperimentSeed(ec.Exp, cand, true)
		if err != nil {
			return nil, nil, err
		}
		var vs []Violation
		if !run.res.Pass {
			vs = append(vs, Violation{OracleReproduction,
				"experiment reports FAIL under explored schedule"})
		}
		if !ec.SkipLedgerOracles && run.res.Ledger != nil && run.res.Expected != nil {
			vs = append(vs, Check(run.res.Ledger, run.res.Expected, ec.Healthy)...)
		}
		return &caseRun{schedules: run.schedules, decisions: run.decisions}, vs, nil
	}
	f.Trace = shrinkWith(runner, f.Trace)
	return runs
}

// FailClosedViolations counts violating cases outside planted probes —
// the number that must be zero for a clean sweep.
func (r *Report) FailClosedViolations() int {
	n := 0
	for _, s := range r.Summaries {
		if !s.Planted {
			n += len(s.ViolSeeds)
		}
	}
	return n
}

// PlantedSwept reports whether any planted probe was part of the sweep.
func (r *Report) PlantedSwept() bool {
	for _, s := range r.Summaries {
		if s.Planted {
			return true
		}
	}
	return false
}

// PlantedFound reports whether the explorer caught a planted probe's
// violation.
func (r *Report) PlantedFound() bool {
	for _, s := range r.Summaries {
		if s.Planted && len(s.ViolSeeds) > 0 {
			return true
		}
	}
	return false
}

// PlantedMinEvents returns the event count of the smallest minimized
// planted counterexample (0 when none was found).
func (r *Report) PlantedMinEvents() int {
	min := 0
	for _, f := range r.Findings {
		if !f.Planted {
			continue
		}
		if e := f.Trace.Events(); min == 0 || e < min {
			min = e
		}
	}
	return min
}

// Render formats the sweep report. The bytes are deterministic for a
// fixed Options: independent of Workers, wall time, and host.
func (r *Report) Render() string {
	var b strings.Builder
	nProbes, nExps := 0, 0
	for _, s := range r.Summaries {
		if s.Kind == "probe" {
			nProbes++
		} else {
			nExps++
		}
	}
	fmt.Fprintf(&b, "schedule explorer: %d probes x %d seeds + %d experiments (seeds %d-%d)\n",
		nProbes, len(r.Seeds), nExps, r.Seeds[0], r.Seeds[len(r.Seeds)-1])
	fmt.Fprintf(&b, "decision points explored: %d\n\n", r.Decisions)

	for _, s := range r.Summaries {
		name := fmt.Sprintf("%s %s", s.Kind, s.ID)
		switch {
		case s.Planted && len(s.ViolSeeds) > 0:
			fmt.Fprintf(&b, "%-28s %3d case(s)  PLANTED violation found in %d case(s), first seed %d\n",
				name, s.Cases, len(s.ViolSeeds), s.ViolSeeds[0])
		case s.Planted:
			fmt.Fprintf(&b, "%-28s %3d case(s)  planted violation NOT FOUND\n", name, s.Cases)
		case len(s.ViolSeeds) > 0:
			fmt.Fprintf(&b, "%-28s %3d case(s)  VIOLATIONS in %d case(s), first seed %d\n",
				name, s.Cases, len(s.ViolSeeds), s.ViolSeeds[0])
		case s.ScheduleIndependent:
			fmt.Fprintf(&b, "%-28s %3d case(s)  clean (schedule-independent: no decision points)\n",
				name, s.Cases)
		default:
			fmt.Fprintf(&b, "%-28s %3d case(s)  clean\n", name, s.Cases)
		}
	}

	for _, f := range r.Findings {
		fmt.Fprintf(&b, "\n%s %s seed %d: oracle %s, minimized %d -> %d events\n",
			f.Kind, f.ID, f.Seed, f.Trace.Oracle, f.OriginalEvents, f.Trace.Events())
		fmt.Fprintf(&b, "  clients=%d faults=%q schedule=%s\n",
			f.Trace.Clients, f.Trace.Faults, renderSchedules(f.Trace.Schedules))
		for _, d := range f.Trace.Detail {
			fmt.Fprintf(&b, "  %s: %s\n", f.Trace.Oracle, d)
		}
	}

	b.WriteString("\n")
	if n := r.FailClosedViolations(); n > 0 {
		fmt.Fprintf(&b, "RESULT: %d invariant violation(s) on fail-closed cases\n", n)
	} else {
		b.WriteString("RESULT: zero invariant violations on fail-closed cases\n")
	}
	if r.PlantedSwept() {
		if r.PlantedFound() {
			fmt.Fprintf(&b, "RESULT: planted fail-open violation found and shrunk to %d events\n",
				r.PlantedMinEvents())
		} else {
			b.WriteString("RESULT: planted fail-open violation NOT found (explorer lost its teeth)\n")
		}
	}
	return b.String()
}

// renderSchedules formats a schedule set compactly for reports.
func renderSchedules(ss []simnet.ScheduleTrace) string {
	if len(ss) == 0 {
		return "canonical"
	}
	parts := make([]string, len(ss))
	for i, s := range ss {
		picks := make([]string, len(s))
		for j, p := range s {
			picks[j] = fmt.Sprint(p)
		}
		parts[i] = "[" + strings.Join(picks, " ") + "]"
	}
	return strings.Join(parts, ",")
}
