package explore

import (
	"bytes"
	"strings"
	"testing"

	"decoupling/internal/experiments"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
)

func probe(t *testing.T, id string) experiments.ExploreProbe {
	t.Helper()
	p, ok := experiments.FindExploreProbe(id)
	if !ok {
		t.Fatalf("probe %q not registered", id)
	}
	return p
}

// --- Trace encoding -----------------------------------------------------

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	in := &Trace{
		Probe:     "odoh",
		Seed:      42,
		Clients:   3,
		Faults:    "crash:proxy@10ms-70ms",
		Schedules: []simnet.ScheduleTrace{{1, 0, 2}, nil, {0, 1}},
		Oracle:    OracleNoLeak,
		Detail:    []string{"x leaked"},
	}
	b, err := EncodeTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeTrace(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("encode(decode(x)) not a fixpoint:\n%s\n%s", b, b2)
	}
	if out.Probe != in.Probe || out.Seed != in.Seed || out.Clients != in.Clients || out.Faults != in.Faults {
		t.Errorf("round trip lost fields: %+v", out)
	}
}

func TestDecodeTraceRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"wrong format", `{"format":"other/v9","probe":"odoh","clients":1}`},
		{"missing probe", `{"format":"decoupling-explore-trace/v1","clients":1}`},
		{"negative clients", `{"format":"decoupling-explore-trace/v1","probe":"odoh","clients":-1}`},
		{"bad fault plan", `{"format":"decoupling-explore-trace/v1","probe":"odoh","clients":1,"faults":"crash:x@zz"}`},
		{"unknown field", `{"format":"decoupling-explore-trace/v1","probe":"odoh","clients":1,"bogus":true}`},
	}
	for _, c := range cases {
		if _, err := DecodeTrace([]byte(c.in)); err == nil {
			t.Errorf("%s: DecodeTrace accepted %q", c.name, c.in)
		}
	}
}

func TestNormalizeSchedules(t *testing.T) {
	in := []simnet.ScheduleTrace{{1, 0, 0}, {0, 0}, {2}, nil, {0}}
	got := normalizeSchedules(in)
	want := []simnet.ScheduleTrace{{1}, nil, {2}}
	if !equalSchedules(got, want) {
		t.Errorf("normalizeSchedules = %v, want %v", got, want)
	}
	if normalizeSchedules([]simnet.ScheduleTrace{{0}, nil}) != nil {
		t.Error("all-canonical schedules should normalize to nil")
	}
}

func TestTraceEvents(t *testing.T) {
	tr := &Trace{Clients: 2, Faults: "crash:proxy@0s-;loss:*>*:0.5@0s-",
		Schedules: []simnet.ScheduleTrace{{1, 0, 2}}}
	// 2 clients + 2 fault clauses + 3 scheduling decisions.
	if got := tr.Events(); got != 7 {
		t.Errorf("Events() = %d, want 7", got)
	}
}

// --- Case synthesis -----------------------------------------------------

func TestSynthCaseDeterministicAndValid(t *testing.T) {
	p := probe(t, "odoh")
	for seed := uint64(1); seed <= 32; seed++ {
		a, b := synthCase(p, seed), synthCase(p, seed)
		if a.Faults != b.Faults || a.Clients != b.Clients {
			t.Fatalf("seed %d: synthesis not deterministic: %+v vs %+v", seed, a, b)
		}
		if a.Clients < 1 || a.Clients > p.MaxClients {
			t.Fatalf("seed %d: clients %d outside [1, %d]", seed, a.Clients, p.MaxClients)
		}
		if _, err := a.Plan(); err != nil {
			t.Fatalf("seed %d: synthesized plan %q invalid: %v", seed, a.Faults, err)
		}
	}
}

// --- Oracles over real probe runs --------------------------------------

func TestFailClosedProbesCleanUnderSweep(t *testing.T) {
	r := Sweep(Options{
		Seeds: SeedList(1, 4),
		Probes: []experiments.ExploreProbe{
			probe(t, "odoh"), probe(t, "odns"),
		},
		Workers: 2,
	})
	if n := r.FailClosedViolations(); n != 0 {
		t.Fatalf("fail-closed probes produced %d violations:\n%s", n, r.Render())
	}
	if r.PlantedSwept() {
		t.Error("no planted probe in this sweep")
	}
}

func TestSweepFindsAndShrinksPlantedViolation(t *testing.T) {
	r := Sweep(Options{
		Seeds:   SeedList(1, 4),
		Probes:  []experiments.ExploreProbe{probe(t, "odoh-failopen")},
		Workers: 2,
	})
	if !r.PlantedFound() {
		t.Fatalf("planted fail-open violation not found:\n%s", r.Render())
	}
	if len(r.Findings) == 0 {
		t.Fatal("no findings recorded")
	}
	f := r.Findings[0]
	if f.Trace.Oracle != OracleNoLeak {
		t.Errorf("planted violation oracle = %q, want %q", f.Trace.Oracle, OracleNoLeak)
	}
	if e := f.Trace.Events(); e > 5 {
		t.Errorf("minimized counterexample has %d events, want <= 5:\n%s", e, r.Render())
	}
	if f.Trace.Events() > f.OriginalEvents {
		t.Errorf("shrinking grew the case: %d -> %d events", f.OriginalEvents, f.Trace.Events())
	}

	// The minimized trace must be replayable and reproduce its oracle.
	b, err := EncodeTrace(f.Trace)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DecodeTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Errorf("minimized trace did not reproduce oracle %s:\n%s", tr.Oracle, res.Render())
	}
}

func TestSweepRenderIsWorkerIndependent(t *testing.T) {
	opts := Options{
		Seeds:  SeedList(1, 3),
		Probes: []experiments.ExploreProbe{probe(t, "odoh"), probe(t, "odoh-failopen")},
	}
	opts.Workers = 1
	a := Sweep(opts).Render()
	opts.Workers = 8
	b := Sweep(opts).Render()
	if a != b {
		t.Errorf("report depends on worker count:\n--- workers=1\n%s\n--- workers=8\n%s", a, b)
	}
}

func TestSweepEmitsTelemetryCounters(t *testing.T) {
	m := telemetry.NewMetrics()
	r := Sweep(Options{
		Seeds:   SeedList(1, 2),
		Probes:  []experiments.ExploreProbe{probe(t, "odoh-failopen")},
		Workers: 1,
		Tel:     telemetry.New("explore", false, m),
	})
	if len(m.CounterSeries(telemetry.MetricExploreCases)) == 0 {
		t.Error("no explore case counters emitted")
	}
	if len(m.CounterSeries(telemetry.MetricExploreViolations)) == 0 {
		t.Error("planted violations not counted")
	}
	if r.Decisions > 0 && len(m.CounterSeries(telemetry.MetricExploreDecisions)) == 0 {
		t.Error("decision points not counted")
	}
	if len(r.Findings) > 0 && len(m.CounterSeries(telemetry.MetricExploreShrinkRuns)) == 0 {
		t.Error("shrink runs not counted")
	}
}

func TestReplayUnknownProbe(t *testing.T) {
	if _, err := Replay(&Trace{Format: TraceFormat, Probe: "nope", Clients: 1}, 1); err == nil {
		t.Error("Replay accepted an unknown probe id")
	}
}

// --- Shrinker (synthetic runner: no protocol runs) ----------------------

// syntheticRunner reports a no-leak violation iff the case still has at
// least minClients clients AND retains the "crash:proxy@0s-" clause.
// The shrinker must strip everything else and nothing more.
func syntheticRunner(minClients int) shrinkRunner {
	return func(cand *Trace) (*caseRun, []Violation, error) {
		keep := false
		for _, c := range strings.Split(cand.Faults, ";") {
			if c == "crash:proxy@0s-" {
				keep = true
			}
		}
		if cand.Clients >= minClients && keep {
			return &caseRun{}, []Violation{{OracleNoLeak, "synthetic leak"}}, nil
		}
		return &caseRun{}, nil, nil
	}
}

func TestShrinkReachesMinimalCase(t *testing.T) {
	start := &Trace{
		Format:  TraceFormat,
		Probe:   "synthetic",
		Clients: 8,
		Faults:  "loss:*>*:0.5@0s-;crash:proxy@0s-;partition:a>b@10ms-20ms",
		Schedules: []simnet.ScheduleTrace{
			{3, 0, 1}, {0, 2},
		},
		Oracle: OracleNoLeak,
	}
	got := shrinkWith(syntheticRunner(2), start)
	if got.Clients != 2 {
		t.Errorf("clients = %d, want 2", got.Clients)
	}
	if got.Faults != "crash:proxy@0s-" {
		t.Errorf("faults = %q, want the single necessary clause", got.Faults)
	}
	if len(got.Schedules) != 0 {
		t.Errorf("schedules = %v, want none (synthetic violation is schedule-free)", got.Schedules)
	}
	if got.Events() != 3 {
		t.Errorf("minimal case has %d events, want 3 (2 clients + 1 clause)", got.Events())
	}
	// Input must not be mutated.
	if start.Clients != 8 || len(start.Schedules) != 2 {
		t.Errorf("shrinkWith mutated its input: %+v", start)
	}
}

func TestShrinkKeepsOracleNotJustAnyViolation(t *testing.T) {
	// Runner: dropping below 3 clients trades the no-leak violation for
	// a verdict violation. The shrinker must NOT accept that trade.
	run := func(cand *Trace) (*caseRun, []Violation, error) {
		if cand.Clients >= 3 {
			return &caseRun{}, []Violation{{OracleNoLeak, "leak"}}, nil
		}
		return &caseRun{}, []Violation{{OracleVerdictStability, "other bug"}}, nil
	}
	got := shrinkWith(run, &Trace{Probe: "synthetic", Clients: 6, Oracle: OracleNoLeak})
	if got.Clients != 3 {
		t.Errorf("clients = %d, want 3 (smallest count preserving the SAME oracle)", got.Clients)
	}
}

func TestNonzeroDecisionsMetric(t *testing.T) {
	tr := &Trace{Schedules: []simnet.ScheduleTrace{{0, 3, 0}, {1}}}
	if got := nonzeroDecisions(tr); got != 2 {
		t.Errorf("nonzeroDecisions = %d, want 2", got)
	}
}

// --- Experiment sweep ---------------------------------------------------

func TestSweepExperimentScheduleIndependenceShortCircuit(t *testing.T) {
	// E1 drives no simnet, so its canonical run has zero decision
	// points and one seed must cover the whole sweep.
	var e1 ExperimentCase
	for _, c := range DefaultExperimentCases() {
		if c.Exp.ID == "E1" {
			e1 = c
		}
	}
	out := sweepExperiment(e1, SeedList(1, 16))
	if !out.scheduleIndependent {
		t.Error("E1 not detected as schedule-independent")
	}
	if out.cases != 1 {
		t.Errorf("E1 ran %d cases, want 1", out.cases)
	}
	if len(out.violSeeds) != 0 {
		t.Errorf("E1 violations: %v", out.violSeeds)
	}
}

func TestDefaultExperimentCasesConfiguration(t *testing.T) {
	byID := map[string]ExperimentCase{}
	for _, c := range DefaultExperimentCases() {
		byID[c.Exp.ID] = c
	}
	if len(byID) != 16 {
		t.Fatalf("%d experiment cases, want 16", len(byID))
	}
	for _, id := range []string{"E14", "E15", "E16"} {
		if byID[id].Healthy {
			t.Errorf("%s: chaos experiment must not assert tuple equality", id)
		}
	}
	if !byID["E16"].SkipLedgerOracles {
		t.Error("E16 retains the intentionally-coupled fail-open ledger; ledger oracles must be skipped")
	}
	for _, id := range []string{"E6", "E8"} {
		if !byID[id].SkipAuditDeterminism {
			t.Errorf("%s: real-loopback experiment needs the audit-determinism exemption", id)
		}
	}
	if byID["E2"].SkipAuditDeterminism || !byID["E2"].Healthy {
		t.Error("E2 should carry the full oracle set")
	}
}
