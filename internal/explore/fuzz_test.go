package explore

import (
	"bytes"
	"testing"

	"decoupling/internal/simnet"
)

// FuzzScheduleTrace round-trips replay traces through the decoder and
// canonical encoder: any input the decoder accepts must re-encode to a
// fixpoint (encode(decode(x)) == encode(decode(encode(decode(x))))),
// and the canonical form must satisfy the same validation the decoder
// enforces. This pins the trace format against silent drift — a replay
// artifact written by one build must stay readable by the next.
func FuzzScheduleTrace(f *testing.F) {
	seedTraces := []*Trace{
		{Probe: "odoh-failopen", Seed: 1, Clients: 1, Faults: "crash:proxy@0s-", Oracle: OracleNoLeak},
		{Probe: "mixnet", Seed: 7, Clients: 8, Faults: "loss:*>*:0.5@10ms-90ms;partition:c0>mix1@0s-",
			Schedules: []simnet.ScheduleTrace{{1, 0, 2}, nil, {3}}},
		{Probe: "E12", Seed: 3},
		{Probe: "odns", Seed: 9, Clients: 20, Detail: []string{"note"}},
	}
	for _, tr := range seedTraces {
		b, err := EncodeTrace(tr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"format":"decoupling-explore-trace/v1","probe":"x","clients":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		enc, err := EncodeTrace(tr)
		if err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected by decoder: %v\n%s", err, enc)
		}
		enc2, err := EncodeTrace(tr2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixpoint:\n%s\n%s", enc, enc2)
		}
		if tr2.Events() != tr.Events() {
			t.Fatalf("round trip changed event count: %d -> %d", tr.Events(), tr2.Events())
		}
	})
}
