// Package explore is a seed-driven schedule explorer: FoundationDB-style
// model checking of the repo's decoupling invariants. Each seed of a
// sweep derives (a) a scheduler permuting event delivery inside the
// simulator's causal/FIFO admissibility envelope and (b) a synthesized
// fault plan for the fault-tolerant probe scenarios, then asserts the
// invariant oracles after quiescence: paper-table tuple equality,
// fail-closed no-leak (faults may erase knowledge, never add it),
// coalition-verdict stability, ledger admission-order linearizability,
// and per-seed report/audit byte-determinism. A violating run is
// delta-debugged down to a minimal counterexample and serialized as a
// replayable Trace for `decouple replay`.
package explore

import (
	"bytes"
	"encoding/json"
	"fmt"

	"decoupling/internal/simnet"
)

// TraceFormat identifies the replay-trace JSON schema.
const TraceFormat = "decoupling-explore-trace/v1"

// Trace is a self-contained, replayable counterexample: everything a
// later process needs to reproduce one explored execution bit-for-bit.
// Schedules holds one replay trace per simulated network the probe
// constructs (construction order); missing or short entries fall back
// to the canonical schedule, which is what makes traces shrinkable.
type Trace struct {
	Format string `json:"format"`
	// Probe is the explore-probe id (experiments.ExploreProbes).
	Probe string `json:"probe"`
	// Seed is the sweep seed the case was derived from (provenance; the
	// fields below are self-sufficient for replay).
	Seed uint64 `json:"seed"`
	// Clients is the probe's client/sender count.
	Clients int `json:"clients"`
	// Faults is the fault plan in ParseFaultPlan grammar ("" = none).
	Faults string `json:"faults,omitempty"`
	// Schedules are the recorded scheduling decisions per net index.
	Schedules []simnet.ScheduleTrace `json:"schedules,omitempty"`
	// Oracle names the invariant the execution violated.
	Oracle string `json:"oracle,omitempty"`
	// Detail carries the violation messages (diagnostic only).
	Detail []string `json:"detail,omitempty"`
}

// Events counts the discrete moving parts of the counterexample — the
// quantity shrinking minimizes: one per client, one per fault clause,
// one per recorded scheduling decision.
func (t *Trace) Events() int {
	n := t.Clients
	if t.Faults != "" {
		if p, err := simnet.ParseFaultPlan(t.Faults); err == nil {
			n += len(p.Faults())
		}
	}
	for _, s := range t.Schedules {
		n += len(s)
	}
	return n
}

// Plan parses the trace's fault plan (nil when empty).
func (t *Trace) Plan() (*simnet.FaultPlan, error) {
	if t.Faults == "" {
		return nil, nil
	}
	return simnet.ParseFaultPlan(t.Faults)
}

// EncodeTrace renders a trace as canonical, newline-terminated JSON:
// fixed field order (struct order), no indentation, empty fields
// omitted. Encoding is deterministic, so trace artifacts diff cleanly.
func EncodeTrace(t *Trace) ([]byte, error) {
	c := *t
	c.Format = TraceFormat
	c.Schedules = normalizeSchedules(c.Schedules)
	b, err := json.Marshal(&c)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeTrace parses and validates a replay trace.
func DecodeTrace(b []byte) (*Trace, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("explore: parsing trace: %w", err)
	}
	if t.Format != TraceFormat {
		return nil, fmt.Errorf("explore: trace format %q, want %q", t.Format, TraceFormat)
	}
	if t.Probe == "" {
		return nil, fmt.Errorf("explore: trace has no probe id")
	}
	if t.Clients < 0 {
		return nil, fmt.Errorf("explore: trace has negative client count %d", t.Clients)
	}
	if t.Faults != "" {
		if _, err := simnet.ParseFaultPlan(t.Faults); err != nil {
			return nil, fmt.Errorf("explore: trace fault plan: %w", err)
		}
	}
	t.Schedules = normalizeSchedules(t.Schedules)
	return &t, nil
}

// normalizeSchedules canonicalizes recorded schedules: trailing zero
// decisions are trimmed from each per-net trace (an exhausted replay
// picks canonical 0, so they are semantically redundant), empty traces
// map to nil, and trailing empty per-net entries are dropped — so an
// empty trace and an absent trace both mean "canonical schedule" and
// encode(decode(x)) is a fixpoint. Recording a replayed run yields the
// same canonical form, which is what makes determinism comparisons and
// shrink-by-truncation sound.
func normalizeSchedules(ss []simnet.ScheduleTrace) []simnet.ScheduleTrace {
	out := make([]simnet.ScheduleTrace, len(ss))
	for i, s := range ss {
		for len(s) > 0 && s[len(s)-1] == 0 {
			s = s[:len(s)-1]
		}
		if len(s) > 0 {
			out[i] = append(simnet.ScheduleTrace(nil), s...)
		}
	}
	for len(out) > 0 && out[len(out)-1] == nil {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
