package explore

import (
	"fmt"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// Oracle names. An oracle is an invariant asserted over a quiesced run;
// violations carry the name so shrinking can hold the counterexample to
// the SAME bug while it minimizes.
const (
	// OracleTupleEquality: with no faults injected and the canonical
	// client count, every admissible schedule must measure exactly the
	// paper's knowledge tuples — the §2.4 verdict tables are claims
	// about the protocol, not about one lucky delivery order.
	OracleTupleEquality = "tuple-equality"
	// OracleNoLeak: under ANY fault plan, faults may erase knowledge
	// (lost messages observe nothing) but never add it — no entity's
	// measured level on any (kind, label) axis may exceed the paper's.
	// This is the fail-closed contract; the planted fail-open probe
	// violates exactly this.
	OracleNoLeak = "no-leak"
	// OracleVerdictStability: the coalition analysis of the measured
	// system must never be weaker than the paper's — a decoupled system
	// stays decoupled, and the minimum re-coupling coalition never
	// shrinks below the published degree.
	OracleVerdictStability = "verdict-stability"
	// OracleAdmissionOrder: the ledger's global admission order is
	// linearizable — sequence numbers are unique, contiguous from 1,
	// and each observer's shard order embeds into the global order.
	OracleAdmissionOrder = "admission-order"
	// OracleDeterminism: replaying the recorded (schedule, faults,
	// clients) case must reproduce the audit report byte-for-byte and
	// re-record the identical normalized schedule. Violations are
	// produced by the sweep's replay pass, not by Check.
	OracleDeterminism = "determinism"
	// OracleReproduction: the case must execute without error, and a
	// swept experiment's own PASS criterion must hold under every
	// explored schedule. Violations are produced by the sweep, not by
	// Check.
	OracleReproduction = "reproduction"
)

// Violation is one oracle failure with a deterministic description.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Check runs the post-quiescence oracle library over a case's ledger.
// expected is the paper's model; healthy selects the tuple-equality
// oracle (no faults, canonical client count) in addition to the
// subsumption oracles that hold under any plan.
func Check(lg *ledger.Ledger, expected *core.System, healthy bool) []Violation {
	var out []Violation
	measured := lg.DeriveSystem(expected)

	if healthy {
		for _, d := range core.CompareTuples(expected, measured) {
			out = append(out, Violation{OracleTupleEquality, d})
		}
	}
	out = append(out, checkNoLeak(expected, measured)...)
	out = append(out, checkVerdict(expected, measured)...)
	out = append(out, checkAdmissionOrder(lg)...)
	return out
}

// levelsByAxis folds a tuple to its per-(kind, label) maximum level.
func levelsByAxis(t core.Tuple) map[[2]string]core.Level {
	m := map[[2]string]core.Level{}
	for _, c := range t {
		k := [2]string{fmt.Sprint(int(c.Kind)), c.Label}
		if c.Level > m[k] {
			m[k] = c.Level
		}
	}
	return m
}

// checkNoLeak asserts measured knowledge is subsumed by the paper's:
// for every non-user entity and axis, measured level <= expected level.
func checkNoLeak(expected, measured *core.System) []Violation {
	var out []Violation
	for _, e := range expected.Entities {
		if e.User {
			continue
		}
		m := measured.Entity(e.Name)
		if m == nil {
			continue
		}
		want := levelsByAxis(e.Knows)
		for _, c := range m.Knows {
			k := [2]string{fmt.Sprint(int(c.Kind)), c.Label}
			if c.Level > want[k] {
				out = append(out, Violation{OracleNoLeak, fmt.Sprintf(
					"entity %q leaked %s: measured %s, paper allows at most %s",
					e.Name, c.Symbol(), c.Level, want[k])})
			}
		}
	}
	return out
}

// checkVerdict asserts the measured coalition analysis is at least as
// strong as the paper's: decoupled stays decoupled, and the minimum
// re-coupling coalition never gets smaller (degree 0 = no coalition
// suffices, the strongest outcome).
func checkVerdict(expected, measured *core.System) []Violation {
	ev, err := core.Analyze(expected)
	if err != nil {
		return []Violation{{OracleVerdictStability, "analyzing expected model: " + err.Error()}}
	}
	mv, err := core.Analyze(measured)
	if err != nil {
		return []Violation{{OracleVerdictStability, "analyzing measured system: " + err.Error()}}
	}
	var out []Violation
	if ev.Decoupled && !mv.Decoupled {
		out = append(out, Violation{OracleVerdictStability, fmt.Sprintf(
			"expected DECOUPLED, measured %s", mv)})
	}
	if mv.Degree != 0 && mv.Degree < ev.Degree {
		out = append(out, Violation{OracleVerdictStability, fmt.Sprintf(
			"re-coupling coalition shrank: degree %d (paper %d)", mv.Degree, ev.Degree)})
	}
	return out
}

// checkAdmissionOrder asserts the ledger's global admission order is a
// linearization: sequence numbers unique and contiguous from 1, global
// order sorted, and every observer's shard order embedded in it.
func checkAdmissionOrder(lg *ledger.Ledger) []Violation {
	obs := lg.Observations()
	var out []Violation
	for i, o := range obs {
		if o.Seq() != uint64(i+1) {
			out = append(out, Violation{OracleAdmissionOrder, fmt.Sprintf(
				"admission seq not contiguous: position %d holds seq %d", i, o.Seq())})
			break
		}
	}
	// Per-shard order must embed in the global order: each observer's
	// log, as appended, must carry strictly increasing seqs.
	seen := map[string]uint64{}
	violated := map[string]bool{}
	byObserver := map[string][]uint64{}
	for _, o := range obs {
		byObserver[o.Observer] = append(byObserver[o.Observer], o.Seq())
	}
	for _, e := range lg.Stats().Observers {
		for i, s := range shardSeqs(lg, e.Observer) {
			if i > 0 && s <= seen[e.Observer] && !violated[e.Observer] {
				violated[e.Observer] = true
				out = append(out, Violation{OracleAdmissionOrder, fmt.Sprintf(
					"observer %q shard order not linearizable: seq %d after %d", e.Observer, s, seen[e.Observer])})
			}
			seen[e.Observer] = s
		}
		if len(byObserver[e.Observer]) != e.Observations {
			out = append(out, Violation{OracleAdmissionOrder, fmt.Sprintf(
				"observer %q: %d observations in global order, %d in shard",
				e.Observer, len(byObserver[e.Observer]), e.Observations)})
		}
	}
	return out
}

// shardSeqs returns one observer's admission seqs in shard append order.
func shardSeqs(lg *ledger.Ledger, observer string) []uint64 {
	obs := lg.ByObserver(observer)
	out := make([]uint64, len(obs))
	for i, o := range obs {
		out[i] = o.Seq()
	}
	return out
}
