// Package ech models TLS Encrypted ClientHello (the paper's second
// §3.3 example of falling short of the Decoupling Principle). ECH
// encrypts the sensitive parts of the ClientHello — most importantly
// the inner SNI — to the client-facing server's published HPKE key, so
// an on-path network observer sees only a public outer name. But ECH
// does not change what the terminating server sees: it still couples
// the client's address with their destination and request.
//
// The model is message-level rather than a full TLS stack: a handshake
// carries a real HPKE-encrypted inner ClientHello, a passive Network
// entity records what crosses the wire, and a Server entity records
// what it terminates. That is exactly the granularity at which the
// paper's argument lives.
package ech

import (
	"encoding/binary"
	"errors"
	"fmt"

	"decoupling/internal/dcrypto/hpke"
	"decoupling/internal/ledger"
)

// Entity names for the analysis.
const (
	NetworkName = "Network"
	ServerName  = "TLS Server"
)

// PublicName is the outer SNI every ECH connection shows the network.
const PublicName = "public.client-facing.example"

const echInfo = "decoupling ech client hello"

// ErrDecrypt is returned when the server cannot open the inner hello.
var ErrDecrypt = errors.New("ech: cannot decrypt inner client hello")

// ClientHello is the observable handshake opener.
type ClientHello struct {
	// OuterSNI is what the wire shows: the real name without ECH, the
	// public name with it.
	OuterSNI string
	// EncryptedInner is the HPKE-sealed inner hello (nil without ECH).
	EncryptedInner []byte
}

// Server is the client-facing TLS terminator (for this model, also the
// backend).
type Server struct {
	kp *hpke.KeyPair
	lg *ledger.Ledger

	handled int
}

// NewServer creates a server with a published ECH key config.
func NewServer(lg *ledger.Ledger) (*Server, error) {
	kp, err := hpke.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("ech: server key: %w", err)
	}
	return &Server{kp: kp, lg: lg}, nil
}

// ECHConfig returns the public key clients seal inner hellos to.
func (s *Server) ECHConfig() []byte { return s.kp.PublicKey() }

// Handled reports completed handshakes.
func (s *Server) Handled() int { return s.handled }

// Network is the passive on-path observer.
type Network struct {
	lg *ledger.Ledger
}

// NewNetwork creates the observer.
func NewNetwork(lg *ledger.Ledger) *Network { return &Network{lg: lg} }

// observe records what the wire shows for one connection.
func (n *Network) observe(clientAddr string, hello *ClientHello) {
	if n.lg == nil {
		return
	}
	h := ledger.ConnHandle(clientAddr, "wire")
	n.lg.SawIdentity(NetworkName, clientAddr, h)
	n.lg.SawData(NetworkName, "sni:"+hello.OuterSNI, h)
}

// BuildHello constructs a ClientHello for innerSNI. With useECH the
// inner name travels encrypted and the outer name is the public name.
func BuildHello(echConfig []byte, innerSNI string, useECH bool) (*ClientHello, error) {
	if !useECH {
		return &ClientHello{OuterSNI: innerSNI}, nil
	}
	inner := make([]byte, 0, 2+len(innerSNI))
	inner = binary.BigEndian.AppendUint16(inner, uint16(len(innerSNI)))
	inner = append(inner, innerSNI...)
	enc, ct, err := hpke.Seal(echConfig, []byte(echInfo), nil, inner)
	if err != nil {
		return nil, err
	}
	return &ClientHello{OuterSNI: PublicName, EncryptedInner: append(enc, ct...)}, nil
}

// Connect runs one handshake + request: the network observes the wire,
// the server terminates and observes the session. Returns the SNI the
// server routed to.
func Connect(net *Network, srv *Server, clientAddr, innerSNI, request string, useECH bool) (string, error) {
	hello, err := BuildHello(srv.ECHConfig(), innerSNI, useECH)
	if err != nil {
		return "", err
	}
	return srv.Terminate(net, clientAddr, hello, request)
}

// Terminate processes one ClientHello as the server: the network
// observes the wire form, then the server decrypts the inner hello (if
// present) and records its session view.
func (srv *Server) Terminate(net *Network, clientAddr string, hello *ClientHello, request string) (string, error) {
	net.observe(clientAddr, hello)

	routed := hello.OuterSNI
	if hello.EncryptedInner != nil {
		if len(hello.EncryptedInner) < hpke.NEnc+16 {
			return "", ErrDecrypt
		}
		plain, err := hpke.Open(hello.EncryptedInner[:hpke.NEnc], srv.kp, []byte(echInfo), nil, hello.EncryptedInner[hpke.NEnc:])
		if err != nil {
			return "", ErrDecrypt
		}
		if len(plain) < 2 {
			return "", ErrDecrypt
		}
		n := int(binary.BigEndian.Uint16(plain))
		if len(plain) < 2+n {
			return "", ErrDecrypt
		}
		routed = string(plain[2 : 2+n])
	}

	if srv.lg != nil {
		// ECH changes nothing here: the terminating server sees the
		// client, the real name, and the request, on one session.
		h := ledger.ConnHandle(clientAddr, "session")
		srv.lg.SawIdentity(ServerName, clientAddr, h)
		srv.lg.SawData(ServerName, "sni:"+routed, h)
		srv.lg.SawData(ServerName, request, h)
	}
	srv.handled++
	return routed, nil
}
