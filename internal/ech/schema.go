package ech

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.3 Encrypted ClientHello discussion. The
// on-path network forwards the handshake reading only the client
// address and the public outer SNI; the inner SNI and application data
// are sealed to the terminating server. The derivation shows both
// halves of the paper's point: ECH blinds the network (△ data), and
// changes nothing at the server, which remains (▲, ●).
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "ech",
		System:  "TLS Encrypted ClientHello",
		Section: "3.3",
		Doc:     "TLS ECH: the handshake's sensitive inner SNI is sealed to the client-facing server's ECH key; the network sees ciphertext, the server still sees everything.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "ech_client_hello",
				Doc:  "outer ClientHello with the ECH extension",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "outer_sni", Label: schema.Routing},
					{Name: "ech_payload", Label: schema.Opaque, Encapsulates: "ech_inner_hello", Openers: []string{ServerName}},
				},
			},
			{
				Name: "ech_inner_hello",
				Doc:  "the encrypted inner ClientHello",
				Fields: []schema.Field{
					{Name: "inner_sni", Label: schema.Query},
				},
			},
			{
				Name: "ech_app_data",
				Doc:  "post-handshake application records",
				Fields: []schema.Field{
					{Name: "record", Label: schema.Opaque, Encapsulates: "ech_request", Openers: []string{ServerName, "Client"}},
				},
			},
			{
				Name: "ech_request",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{
					{Message: "ech_client_hello", Fields: []string{"client_addr", "outer_sni"}},
					{Message: "ech_app_data"},
				},
				Receives: []schema.Use{
					{Message: "ech_app_data"},
					{Message: "ech_request", Fields: []string{"body"}},
				},
			},
			{
				Name: NetworkName,
				Receives: []schema.Use{
					// The passive network reads addressing and the public
					// outer SNI; every ECH and record byte stays opaque.
					{Message: "ech_client_hello", Fields: []string{"client_addr", "outer_sni"}},
					{Message: "ech_app_data"},
				},
				Sends: []schema.Use{
					{Message: "ech_client_hello"},
					{Message: "ech_app_data"},
				},
			},
			{
				Name: ServerName,
				Receives: []schema.Use{
					{Message: "ech_client_hello", Fields: []string{"client_addr", "outer_sni", "ech_payload"}},
					{Message: "ech_inner_hello", Fields: []string{"inner_sni"}},
					{Message: "ech_app_data", Fields: []string{"record"}},
					{Message: "ech_request", Fields: []string{"body"}},
				},
				Sends: []schema.Use{{Message: "ech_app_data"}},
				// The server additionally holds the session handle (resumption
				// tickets, connection state) beyond the shared wire.
				Handles: []string{"session"},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: NetworkName, Message: "ech_client_hello", Handle: "wire"},
			{From: NetworkName, To: ServerName, Message: "ech_client_hello", Handle: "wire"},
			{From: "Client", To: NetworkName, Message: "ech_app_data", Handle: "wire"},
			{From: NetworkName, To: ServerName, Message: "ech_app_data", Handle: "wire"},
			{From: ServerName, To: NetworkName, Message: "ech_app_data", Handle: "wire"},
			{From: NetworkName, To: "Client", Message: "ech_app_data", Handle: "wire"},
		},
	}
}
