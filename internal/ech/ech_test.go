package ech

import (
	"fmt"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

func TestRoutingWithAndWithoutECH(t *testing.T) {
	srv, err := NewServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(nil)
	for _, useECH := range []bool{false, true} {
		routed, err := Connect(net, srv, "10.0.0.7", "private.example", "GET /page", useECH)
		if err != nil {
			t.Fatal(err)
		}
		if routed != "private.example" {
			t.Errorf("useECH=%v: routed to %q", useECH, routed)
		}
	}
	if srv.Handled() != 2 {
		t.Errorf("handled = %d", srv.Handled())
	}
}

func TestHelloShapes(t *testing.T) {
	srv, _ := NewServer(nil)
	plain, err := BuildHello(srv.ECHConfig(), "private.example", false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.OuterSNI != "private.example" || plain.EncryptedInner != nil {
		t.Errorf("plain hello = %+v", plain)
	}
	ech, err := BuildHello(srv.ECHConfig(), "private.example", true)
	if err != nil {
		t.Fatal(err)
	}
	if ech.OuterSNI != PublicName || len(ech.EncryptedInner) == 0 {
		t.Errorf("ech hello outer = %q", ech.OuterSNI)
	}
}

func TestCorruptedInnerRejected(t *testing.T) {
	srv, _ := NewServer(nil)
	net := NewNetwork(nil)
	hello, err := BuildHello(srv.ECHConfig(), "x.example", true)
	if err != nil {
		t.Fatal(err)
	}
	hello.EncryptedInner[40] ^= 1
	if _, err := srv.Terminate(net, "c", hello, "r"); err != ErrDecrypt {
		t.Errorf("tampered inner hello error = %v, want ErrDecrypt", err)
	}
	// Sealed to a different server's key: also undecryptable.
	other, _ := NewServer(nil)
	foreign, err := BuildHello(other.ECHConfig(), "x.example", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Terminate(net, "c", foreign, "r"); err != ErrDecrypt {
		t.Errorf("foreign-key inner hello error = %v, want ErrDecrypt", err)
	}
}

// TestNetworkViewChanges: ECH hides the inner SNI from the network —
// the improvement — while TestServerStaysCoupled shows the limit.
func TestNetworkViewChanges(t *testing.T) {
	run := func(useECH bool) []ledger.Observation {
		cls := ledger.NewClassifier()
		cls.RegisterIdentity("10.0.0.7", "alice", "", core.Sensitive)
		cls.RegisterData("sni:private.example", "alice", "", core.Sensitive)
		cls.RegisterData("GET /medical-records", "alice", "", core.Sensitive)
		lg := ledger.New(cls, nil)
		srv, err := NewServer(lg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Connect(NewNetwork(lg), srv, "10.0.0.7", "private.example", "GET /medical-records", useECH); err != nil {
			t.Fatal(err)
		}
		return lg.Observations()
	}

	// Without ECH the network sees the sensitive SNI.
	var sawSensitive bool
	for _, o := range run(false) {
		if o.Observer == NetworkName && o.Kind == core.Data && o.Level == core.Sensitive {
			sawSensitive = true
		}
	}
	if !sawSensitive {
		t.Error("without ECH the network should see the sensitive SNI")
	}
	// With ECH it does not.
	for _, o := range run(true) {
		if o.Observer == NetworkName && o.Kind == core.Data && o.Level > core.NonSensitive {
			t.Errorf("with ECH the network observed sensitive data: %+v", o)
		}
	}
}

// TestDecouplingTable: the §3.3 point — even with ECH the system is NOT
// decoupled, because the TLS server remains (▲, ●).
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	srv, err := NewServer(lg)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(lg)
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("client-%d", i)
		addr := fmt.Sprintf("10.0.0.%d", i)
		cls.RegisterIdentity(addr, who, "", core.Sensitive)
		cls.RegisterData("sni:private.example", who, "", core.Sensitive)
		cls.RegisterData(fmt.Sprintf("GET /records/%d", i), who, "", core.Sensitive)
		if _, err := Connect(net, srv, addr, "private.example", fmt.Sprintf("GET /records/%d", i), true); err != nil {
			t.Fatal(err)
		}
	}

	expected := core.ECH()
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decoupled {
		t.Error("ECH measured as decoupled; the paper's point is that it is not")
	}
}

func BenchmarkConnectECH(b *testing.B) {
	srv, err := NewServer(nil)
	if err != nil {
		b.Fatal(err)
	}
	net := NewNetwork(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Connect(net, srv, "c", "private.example", "GET /", true); err != nil {
			b.Fatal(err)
		}
	}
}
