// Package tee models Trusted Execution Environments as a decoupling
// mechanism, per the paper's §4.3: hardware that runs attested code on
// a host that cannot inspect its state, shifting the locus of trust to
// the hardware vendor. The paper names two systems built this way —
// CACTI (client-side TEE keeping private rate-limiting state in place
// of CAPTCHAs) and Phoenix (keyless CDNs serving TLS from enclaves the
// CDN operator cannot read) — both of which this package models in
// applications.go.
//
// The model captures exactly the properties the argument needs:
//
//   - Measurement: an enclave's identity is the digest of its program;
//     attestation binds (vendor, measurement, report data) under the
//     vendor's signing key (ed25519 here).
//   - Isolation: the host can Invoke the enclave and observe the
//     input/output byte lengths, but cannot read state or intermediate
//     values — enforced in the model by construction: Invoke is the
//     only door, and the ledger instrumentation records what the HOST
//     sees, which is never the plaintext state.
package tee

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by attestation verification.
var (
	ErrBadAttestation    = errors.New("tee: attestation signature invalid")
	ErrWrongMeasurement  = errors.New("tee: enclave runs unexpected code")
	ErrWrongNonce        = errors.New("tee: attestation not bound to challenge")
	ErrEnclaveFault      = errors.New("tee: enclave program fault")
	ErrUnknownVendorMode = errors.New("tee: unknown vendor")
)

// Program is the code an enclave runs: a pure transition function over
// sealed state. Name determines the measurement, so two programs with
// the same logic but different names measure differently (as binaries
// would).
type Program struct {
	Name string
	Run  func(state, input []byte) (newState, output []byte, err error)
}

// Measurement returns the program digest an attestation commits to.
func (p Program) Measurement() [32]byte {
	return sha256.Sum256([]byte("tee program:" + p.Name))
}

// Vendor is a hardware manufacturer: the root of trust. It signs
// attestations for enclaves it manufactured.
type Vendor struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewVendor creates a vendor with a fresh attestation key.
func NewVendor(name string) (*Vendor, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tee: vendor key: %w", err)
	}
	return &Vendor{Name: name, pub: pub, priv: priv}, nil
}

// PublicKey returns the vendor's attestation verification key.
func (v *Vendor) PublicKey() ed25519.PublicKey { return v.pub }

// Manufacture creates an enclave running program on this vendor's
// hardware.
func (v *Vendor) Manufacture(program Program) *Enclave {
	return &Enclave{vendor: v, program: program}
}

// Attestation is a signed statement: "an enclave of this vendor, whose
// code measures to Measurement, produced ReportData in response to
// Nonce".
type Attestation struct {
	Vendor      string
	Measurement [32]byte
	Nonce       []byte
	ReportData  []byte
	Signature   []byte
}

func (a *Attestation) signedBytes() []byte {
	out := make([]byte, 0, 64+len(a.Nonce)+len(a.ReportData))
	out = append(out, "tee attestation:"...)
	out = append(out, a.Vendor...)
	out = append(out, a.Measurement[:]...)
	out = append(out, byte(len(a.Nonce)))
	out = append(out, a.Nonce...)
	out = append(out, a.ReportData...)
	return out
}

// Verify checks an attestation against the vendor key, the expected
// program measurement, and the verifier's challenge nonce.
func Verify(vendorKey ed25519.PublicKey, a *Attestation, expected Program, nonce []byte) error {
	if a.Measurement != expected.Measurement() {
		return ErrWrongMeasurement
	}
	if string(a.Nonce) != string(nonce) {
		return ErrWrongNonce
	}
	if !ed25519.Verify(vendorKey, a.signedBytes(), a.Signature) {
		return ErrBadAttestation
	}
	return nil
}

// Enclave is an attested execution environment. The host owns the
// *Enclave value but has no accessor for the sealed state — Invoke and
// AttestedInvoke are the only doors, mirroring the hardware boundary.
type Enclave struct {
	vendor  *Vendor
	program Program

	mu      sync.Mutex
	state   []byte
	invokes int
}

// Measurement returns the running program's digest.
func (e *Enclave) Measurement() [32]byte { return e.program.Measurement() }

// Invokes reports how many times the host called in.
func (e *Enclave) Invokes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.invokes
}

// Invoke runs one transition. The host supplies input and receives
// output; state stays inside.
func (e *Enclave) Invoke(input []byte) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	newState, output, err := e.program.Run(e.state, input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEnclaveFault, err)
	}
	e.state = newState
	e.invokes++
	return output, nil
}

// AttestedInvoke runs one transition and returns the output wrapped in
// a vendor-signed attestation bound to the verifier's nonce. This is
// the remote-attestation flow CACTI uses: the verifier learns that
// *this specific program* produced the output, and nothing else.
func (e *Enclave) AttestedInvoke(nonce, input []byte) (*Attestation, error) {
	output, err := e.Invoke(input)
	if err != nil {
		return nil, err
	}
	a := &Attestation{
		Vendor:      e.vendor.Name,
		Measurement: e.program.Measurement(),
		Nonce:       append([]byte(nil), nonce...),
		ReportData:  output,
	}
	a.Signature = ed25519.Sign(e.vendor.priv, a.signedBytes())
	return a, nil
}

// StateDigest lets tests confirm state evolution without exposing
// state contents to hosts: it returns a hex digest only.
func (e *Enclave) StateDigest() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	sum := sha256.Sum256(e.state)
	return hex.EncodeToString(sum[:8])
}
