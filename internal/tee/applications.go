package tee

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"decoupling/internal/dcrypto/hpke"
	"decoupling/internal/ledger"
)

// This file models the two TEE-based systems the paper's §4.3 names:
//
//   - CACTI: "CAPTCHA Avoidance via Client-side TEE Integration" — a
//     client-side enclave keeps a private rate-limiting counter and
//     proves "I am under the threshold" to origins, replacing
//     privacy-unfriendly CAPTCHAs and tracking cookies.
//   - Phoenix: "keyless CDNs with conclaves" — the origin provisions
//     its TLS key into a CDN-side enclave after attestation; the CDN
//     operator serves traffic it cannot read.

// --- CACTI -----------------------------------------------------------

// CACTIProgram is the rate-counter enclave program: state is a counter,
// input is the threshold (8 bytes big endian), output is 1 if the
// incremented counter is within the threshold.
func CACTIProgram() Program {
	return Program{
		Name: "cacti-rate-counter-v1",
		Run: func(state, input []byte) ([]byte, []byte, error) {
			if len(input) != 8 {
				return nil, nil, errors.New("threshold must be 8 bytes")
			}
			threshold := binary.BigEndian.Uint64(input)
			var count uint64
			if len(state) == 8 {
				count = binary.BigEndian.Uint64(state)
			}
			count++
			newState := binary.BigEndian.AppendUint64(nil, count)
			ok := byte(0)
			if count <= threshold {
				ok = 1
			}
			return newState, []byte{ok}, nil
		},
	}
}

// CACTIOrigin is a website gating access on rate proofs instead of
// CAPTCHAs. It trusts the given vendor key and program.
type CACTIOrigin struct {
	Name      string
	VendorKey []byte // ed25519 public key bytes
	Threshold uint64
	lg        *ledger.Ledger
	served    int
}

// NewCACTIOrigin creates the origin.
func NewCACTIOrigin(name string, vendorKey []byte, threshold uint64, lg *ledger.Ledger) *CACTIOrigin {
	return &CACTIOrigin{Name: name, VendorKey: vendorKey, Threshold: threshold, lg: lg}
}

// Served reports accepted requests.
func (o *CACTIOrigin) Served() int { return o.served }

// Admit runs the CACTI admission flow for a client enclave: challenge,
// attested rate proof, verify. The origin learns only presenterAddr and
// a one-bit rate proof — no CAPTCHA-solving behavioral data, no
// tracking cookie.
func (o *CACTIOrigin) Admit(presenterAddr string, enclave *Enclave, resource string) error {
	nonce := []byte(fmt.Sprintf("challenge:%s:%d", o.Name, o.served))
	input := binary.BigEndian.AppendUint64(nil, o.Threshold)
	att, err := enclave.AttestedInvoke(nonce, input)
	if err != nil {
		return err
	}
	if err := Verify(o.VendorKey, att, CACTIProgram(), nonce); err != nil {
		return err
	}
	if len(att.ReportData) != 1 || att.ReportData[0] != 1 {
		return errors.New("tee: rate limit exceeded")
	}
	if o.lg != nil {
		h := ledger.ConnHandle(presenterAddr, o.Name)
		o.lg.SawIdentity(o.Name, presenterAddr, h)
		o.lg.SawData(o.Name, resource, h)
		o.lg.SawData(o.Name, "rate-proof:ok", h)
	}
	o.served++
	return nil
}

// --- Phoenix ---------------------------------------------------------

// PhoenixProgram is the keyless-CDN enclave: provisioned with an HPKE
// private-key seed and content, it terminates "TLS" (modeled as HPKE to
// the enclave's key) inside the enclave. The host sees only ciphertext
// in and ciphertext out.
//
// Input framing: [op 1][payload]; op 0 = provision (payload = 32-byte
// key seed || content), op 1 = serve (payload = enc || ct of a request
// sealed to the enclave key). Serve output: ciphertext of the response
// under the request context's exported key.
func PhoenixProgram() Program {
	return Program{
		Name: "phoenix-keyless-cdn-v1",
		Run: func(state, input []byte) ([]byte, []byte, error) {
			if len(input) < 1 {
				return nil, nil, errors.New("empty input")
			}
			switch input[0] {
			case 0: // provision
				if len(input) < 1+32 {
					return nil, nil, errors.New("short provision")
				}
				return append([]byte(nil), input[1:]...), []byte("provisioned"), nil
			case 1: // serve
				if len(state) < 32 {
					return nil, nil, errors.New("not provisioned")
				}
				kp, err := hpke.KeyPairFromSeed(state[:32])
				if err != nil {
					return nil, nil, err
				}
				body := input[1:]
				if len(body) < hpke.NEnc+16 {
					return nil, nil, errors.New("short request")
				}
				ctx, err := hpke.SetupRecipient(body[:hpke.NEnc], kp, []byte("phoenix request"))
				if err != nil {
					return nil, nil, err
				}
				req, err := ctx.Open(nil, body[hpke.NEnc:])
				if err != nil {
					return nil, nil, err
				}
				content := state[32:]
				resp := append([]byte("content for "+string(req)+": "), content...)
				respKey := ctx.Export([]byte("phoenix response"), 16)
				sealed, err := hpke.SealSymmetric(respKey, nil, resp)
				if err != nil {
					return nil, nil, err
				}
				return state, sealed, nil
			default:
				return nil, nil, errors.New("unknown op")
			}
		},
	}
}

// PhoenixCDN is the CDN operator: it hosts the enclave and relays
// ciphertext. Its observations are the point: client identity yes,
// content no.
type PhoenixCDN struct {
	Name    string
	Enclave *Enclave
	lg      *ledger.Ledger
}

// NewPhoenixCDN wraps an enclave in the operator role.
func NewPhoenixCDN(name string, enclave *Enclave, lg *ledger.Ledger) *PhoenixCDN {
	return &PhoenixCDN{Name: name, Enclave: enclave, lg: lg}
}

// Serve relays one encrypted request from clientAddr through the
// enclave, observing only ciphertext.
func (c *PhoenixCDN) Serve(clientAddr string, encryptedRequest []byte) ([]byte, error) {
	if c.lg != nil {
		h := ledger.ConnHandle(clientAddr, c.Name)
		c.lg.SawIdentity(c.Name, clientAddr, h)
		c.lg.SawData(c.Name, "ciphertext:"+ledger.Hash(encryptedRequest), h)
	}
	return c.Enclave.Invoke(append([]byte{1}, encryptedRequest...))
}

// PhoenixOrigin is the content owner. It verifies the enclave's
// attestation before provisioning its key and content — trust moves to
// the hardware vendor, not the CDN operator.
type PhoenixOrigin struct {
	Name    string
	keySeed []byte
	pub     []byte
}

// NewPhoenixOrigin creates an origin with a fresh content key.
func NewPhoenixOrigin(name string) (*PhoenixOrigin, error) {
	seed := make([]byte, 32)
	if _, err := rand.Read(seed); err != nil {
		return nil, err
	}
	kp, err := hpke.KeyPairFromSeed(seed)
	if err != nil {
		return nil, err
	}
	return &PhoenixOrigin{Name: name, keySeed: seed, pub: kp.PublicKey()}, nil
}

// PublicKey is what clients seal requests to.
func (o *PhoenixOrigin) PublicKey() []byte { return o.pub }

// Provision attests the enclave and, on success, installs the origin's
// key seed and content into it.
func (o *PhoenixOrigin) Provision(vendorKey []byte, enclave *Enclave, content []byte) error {
	nonce := []byte("provision:" + o.Name)
	// Attest with a no-op-safe probe: provisioning is itself the first
	// attested invoke (the attestation covers the provision output).
	payload := append([]byte{0}, append(append([]byte(nil), o.keySeed...), content...)...)
	att, err := enclave.AttestedInvoke(nonce, payload)
	if err != nil {
		return err
	}
	if err := Verify(vendorKey, att, PhoenixProgram(), nonce); err != nil {
		return err
	}
	if string(att.ReportData) != "provisioned" {
		return errors.New("tee: provisioning rejected")
	}
	return nil
}

// PhoenixRequest seals a request to the origin key and decrypts the
// CDN's response — the client side of the keyless-CDN flow.
func PhoenixRequest(originPub []byte, cdn *PhoenixCDN, clientAddr, path string) ([]byte, error) {
	enc, ctx, err := hpke.SetupSender(originPub, []byte("phoenix request"))
	if err != nil {
		return nil, err
	}
	wire := append(append([]byte(nil), enc...), ctx.Seal(nil, []byte(path))...)
	sealedResp, err := cdn.Serve(clientAddr, wire)
	if err != nil {
		return nil, err
	}
	respKey := ctx.Export([]byte("phoenix response"), 16)
	return hpke.OpenSymmetric(respKey, nil, sealedResp)
}
