package tee

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §4.3 Phoenix keyless-CDN shape. The CDN
// operator terminates the reader's connection (identity) but every
// request byte is sealed to the enclave's attested key — the operator's
// own machine holds data its operator cannot read. The enclave opens
// requests and provisioned content; the static tuples show the trust
// shift: (▲, ⊙) at the operator, with sensitive data confined to
// hardware the vendor vouches for.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "tee",
		System:  "TEE keyless CDN (Phoenix)",
		Section: "4.3",
		Doc:     "Phoenix keyless CDN: readers' requests are sealed to an attested enclave on the CDN's own host; the operator serves content it cannot decrypt.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "phoenix_request",
				Doc:  "reader request to the CDN edge",
				Fields: []schema.Field{
					{Name: "reader_addr", Label: schema.Identity},
					{Name: "sealed_request", Label: schema.Opaque, Encapsulates: "phoenix_inner_request", Openers: []string{"Enclave"}},
				},
			},
			{
				Name: "phoenix_enclave_call",
				Doc:  "the host's Invoke into the enclave: ciphertext in, ciphertext out",
				Fields: []schema.Field{
					{Name: "sealed_request", Label: schema.Opaque, Encapsulates: "phoenix_inner_request", Openers: []string{"Enclave"}},
				},
			},
			{
				Name: "phoenix_inner_request",
				Fields: []schema.Field{
					{Name: "path", Label: schema.Query},
				},
			},
			{
				Name: "phoenix_provision",
				Doc:  "publisher content sealed to the attested enclave measurement",
				Fields: []schema.Field{
					{Name: "publisher_name", Label: schema.Routing},
					{Name: "sealed_content", Label: schema.Opaque, Encapsulates: "phoenix_article", Openers: []string{"Enclave"}},
				},
			},
			{
				Name: "phoenix_article",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
			{
				Name: "phoenix_response",
				Fields: []schema.Field{
					{Name: "sealed_body", Label: schema.Opaque, Encapsulates: "phoenix_article", Openers: []string{"Reader"}},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Reader", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "phoenix_request", Fields: []string{"reader_addr"}}},
				Receives: []schema.Use{
					{Message: "phoenix_response", Fields: []string{"sealed_body"}},
					{Message: "phoenix_article", Fields: []string{"body"}},
				},
			},
			{
				Name: "CDN Operator",
				Receives: []schema.Use{
					{Message: "phoenix_request", Fields: []string{"reader_addr"}},
					{Message: "phoenix_response"},
				},
				Sends: []schema.Use{
					{Message: "phoenix_enclave_call"},
					{Message: "phoenix_response"},
				},
			},
			{
				Name: "Enclave",
				Receives: []schema.Use{
					{Message: "phoenix_enclave_call", Fields: []string{"sealed_request"}},
					{Message: "phoenix_inner_request", Fields: []string{"path"}},
					{Message: "phoenix_provision", Fields: []string{"publisher_name", "sealed_content"}},
					{Message: "phoenix_article", Fields: []string{"body"}},
				},
				Sends: []schema.Use{{Message: "phoenix_response"}},
			},
			{
				Name: "Publisher",
				Sends: []schema.Use{
					{Message: "phoenix_provision", Fields: []string{"publisher_name"}},
				},
			},
		},
		Flows: []schema.Flow{
			{From: "Reader", To: "CDN Operator", Message: "phoenix_request", Handle: "cdn-conn"},
			{From: "CDN Operator", To: "Enclave", Message: "phoenix_enclave_call", Handle: "enclave-call"},
			{From: "Publisher", To: "Enclave", Message: "phoenix_provision", Handle: "provision"},
			{From: "Enclave", To: "CDN Operator", Message: "phoenix_response", Handle: "enclave-call"},
			{From: "CDN Operator", To: "Reader", Message: "phoenix_response", Handle: "cdn-conn"},
		},
	}
}
