package tee

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

func testVendor(t testing.TB) *Vendor {
	t.Helper()
	v, err := NewVendor("AcmeSilicon")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestInvokeEvolvesSealedState(t *testing.T) {
	v := testVendor(t)
	e := v.Manufacture(CACTIProgram())
	before := e.StateDigest()
	out, err := e.Invoke(append(make([]byte, 7), 10)) // threshold 10
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Errorf("first invoke under threshold returned %v", out)
	}
	if e.StateDigest() == before {
		t.Error("state digest unchanged after invoke")
	}
	if e.Invokes() != 1 {
		t.Errorf("invokes = %d", e.Invokes())
	}
}

func TestAttestationVerifies(t *testing.T) {
	v := testVendor(t)
	e := v.Manufacture(CACTIProgram())
	nonce := []byte("fresh challenge")
	att, err := e.AttestedInvoke(nonce, append(make([]byte, 7), 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(v.PublicKey(), att, CACTIProgram(), nonce); err != nil {
		t.Errorf("valid attestation rejected: %v", err)
	}
}

func TestAttestationRejections(t *testing.T) {
	v := testVendor(t)
	e := v.Manufacture(CACTIProgram())
	nonce := []byte("n1")
	att, err := e.AttestedInvoke(nonce, append(make([]byte, 7), 5))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong program expectation.
	if err := Verify(v.PublicKey(), att, PhoenixProgram(), nonce); err != ErrWrongMeasurement {
		t.Errorf("wrong-measurement err = %v", err)
	}
	// Replay under a different nonce.
	if err := Verify(v.PublicKey(), att, CACTIProgram(), []byte("n2")); err != ErrWrongNonce {
		t.Errorf("wrong-nonce err = %v", err)
	}
	// Tampered report data.
	bad := *att
	bad.ReportData = []byte{0}
	if err := Verify(v.PublicKey(), &bad, CACTIProgram(), nonce); err != ErrBadAttestation {
		t.Errorf("tampered err = %v", err)
	}
	// Wrong vendor.
	v2 := testVendor(t)
	if err := Verify(v2.PublicKey(), att, CACTIProgram(), nonce); err != ErrBadAttestation {
		t.Errorf("foreign-vendor err = %v", err)
	}
}

func TestEnclaveFaultSurfaces(t *testing.T) {
	v := testVendor(t)
	e := v.Manufacture(CACTIProgram())
	if _, err := e.Invoke([]byte("short")); !errors.Is(err, ErrEnclaveFault) {
		t.Errorf("err = %v", err)
	}
}

// TestCACTIRateLimit: the enclave's private counter enforces the
// threshold across origins without the origin learning the count.
func TestCACTIRateLimit(t *testing.T) {
	v := testVendor(t)
	e := v.Manufacture(CACTIProgram())
	origin := NewCACTIOrigin("site.example", v.PublicKey(), 3, nil)
	for i := 0; i < 3; i++ {
		if err := origin.Admit("anon-conn", e, "/page"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if err := origin.Admit("anon-conn", e, "/page"); err == nil {
		t.Error("fourth request admitted past threshold 3")
	}
	if origin.Served() != 3 {
		t.Errorf("served = %d", origin.Served())
	}
}

// TestCACTIDecoupling: the origin's observations contain the rate proof
// and the resource, never a counter value or cross-site history — the
// CAPTCHA-replacement privacy claim.
func TestCACTIDecoupling(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	v := testVendor(t)
	e := v.Manufacture(CACTIProgram())
	origin := NewCACTIOrigin("site.example", v.PublicKey(), 10, lg)
	cls.RegisterIdentity("anon-conn", "", "", core.NonSensitive)
	for i := 0; i < 4; i++ {
		if err := origin.Admit("anon-conn", e, fmt.Sprintf("/r/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range lg.ByObserver("site.example") {
		if strings.Contains(o.Value, "count") || strings.Contains(o.Value, "history") {
			t.Errorf("origin observed enclave internals: %q", o.Value)
		}
	}
	tuple := lg.DeriveTuple("site.example", core.Tuple{core.NonSensID(), core.NonSensData()})
	if tuple.Coupled() {
		t.Errorf("CACTI origin coupled: %s", tuple.Symbol())
	}
}

// TestPhoenixKeylessCDN: the origin provisions after attestation; the
// client fetches through the CDN; the CDN operator sees ciphertext
// only.
func TestPhoenixKeylessCDN(t *testing.T) {
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("client-addr", "alice", "", core.Sensitive)
	cls.RegisterData("/members/secret-page", "alice", "", core.Sensitive)
	lg := ledger.New(cls, nil)

	v := testVendor(t)
	enclave := v.Manufacture(PhoenixProgram())
	origin, err := NewPhoenixOrigin("publisher.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := origin.Provision(v.PublicKey(), enclave, []byte("the protected article")); err != nil {
		t.Fatal(err)
	}
	cdn := NewPhoenixCDN("CDN Operator", enclave, lg)

	resp, err := PhoenixRequest(origin.PublicKey(), cdn, "client-addr", "/members/secret-page")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(resp, []byte("the protected article")) {
		t.Errorf("response = %q", resp)
	}

	// The operator never observed the path or the content.
	for _, o := range lg.ByObserver("CDN Operator") {
		if o.Kind == core.Data && o.Level > core.NonSensitive {
			t.Errorf("CDN operator observed sensitive data: %+v", o)
		}
		if strings.Contains(o.Value, "secret-page") || strings.Contains(o.Value, "article") {
			t.Errorf("CDN operator saw plaintext: %q", o.Value)
		}
	}
	tuple := lg.DeriveTuple("CDN Operator", core.Tuple{core.NonSensID(), core.NonSensData()})
	want := core.Tuple{core.SensID(), core.NonSensData()}
	if !tuple.Equal(want) {
		t.Errorf("CDN operator tuple = %s, want %s", tuple.Symbol(), want.Symbol())
	}
}

func TestPhoenixServeBeforeProvisionFails(t *testing.T) {
	v := testVendor(t)
	enclave := v.Manufacture(PhoenixProgram())
	cdn := NewPhoenixCDN("cdn", enclave, nil)
	origin, err := NewPhoenixOrigin("pub")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PhoenixRequest(origin.PublicKey(), cdn, "c", "/x"); err == nil {
		t.Error("unprovisioned enclave served content")
	}
}

func TestPhoenixWrongKeyRequestFails(t *testing.T) {
	v := testVendor(t)
	enclave := v.Manufacture(PhoenixProgram())
	origin, _ := NewPhoenixOrigin("pub")
	if err := origin.Provision(v.PublicKey(), enclave, []byte("content")); err != nil {
		t.Fatal(err)
	}
	cdn := NewPhoenixCDN("cdn", enclave, nil)
	other, _ := NewPhoenixOrigin("other")
	if _, err := PhoenixRequest(other.PublicKey(), cdn, "c", "/x"); err == nil {
		t.Error("request sealed to wrong origin key succeeded")
	}
}

// TestPhoenixDecouplingComparison: with the enclave the CDN operator is
// (▲, ⊙); the traditional CDN (operator terminates TLS itself) is
// (▲, ●) — the §4.3 decoupling gain, analyzed.
func TestPhoenixDecouplingComparison(t *testing.T) {
	withEnclave := &core.System{
		Name: "Keyless CDN (Phoenix)",
		Entities: []core.Entity{
			{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "CDN Operator", Knows: core.Tuple{core.SensID(), core.NonSensData()}, Links: []string{"edge"}},
			{Name: "Origin", Knows: core.Tuple{core.NonSensID(), core.SensData()}, Links: []string{"provision"}},
		},
	}
	traditional := &core.System{
		Name: "Traditional CDN",
		Entities: []core.Entity{
			{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "CDN Operator", Knows: core.Tuple{core.SensID(), core.SensData()}, Links: []string{"edge"}},
			{Name: "Origin", Knows: core.Tuple{core.NonSensID(), core.SensData()}, Links: []string{"pull"}},
		},
	}
	v1, err := core.Analyze(withEnclave)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := core.Analyze(traditional)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Decoupled {
		t.Errorf("Phoenix model not decoupled: %s", v1)
	}
	if v2.Decoupled {
		t.Errorf("traditional CDN model decoupled: %s", v2)
	}
}

func BenchmarkAttestedInvoke(b *testing.B) {
	v, err := NewVendor("bench")
	if err != nil {
		b.Fatal(err)
	}
	e := v.Manufacture(CACTIProgram())
	input := append(make([]byte, 7), 255)
	nonce := []byte("bench nonce")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.AttestedInvoke(nonce, input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhoenixRequest(b *testing.B) {
	v, _ := NewVendor("bench")
	enclave := v.Manufacture(PhoenixProgram())
	origin, err := NewPhoenixOrigin("pub")
	if err != nil {
		b.Fatal(err)
	}
	if err := origin.Provision(v.PublicKey(), enclave, make([]byte, 1024)); err != nil {
		b.Fatal(err)
	}
	cdn := NewPhoenixCDN("cdn", enclave, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PhoenixRequest(origin.PublicKey(), cdn, "c", "/bench"); err != nil {
			b.Fatal(err)
		}
	}
}
