package ohttp

import (
	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares RFC 9458 Oblivious HTTP, the paper's §3.2.5
// "generalization of ODoH": the relay reads the client's address and
// forwards an HPKE envelope it cannot open; the gateway opens it and
// reads the binary HTTP request, seeing only the relay's address.
func StaticSchema() *schema.Scenario {
	return &schema.Scenario{
		Name:    "ohttp",
		System:  "Oblivious HTTP",
		Section: "3.2.5",
		Doc:     "Oblivious HTTP: binary HTTP requests HPKE-sealed to the gateway's key config, relayed by a party that sees identity but only ciphertext.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: "ohttp_request",
				Doc:  "encapsulated request as sent by the client",
				Fields: []schema.Field{
					{Name: "client_addr", Label: schema.Identity},
					{Name: "sealed_request", Label: schema.Opaque, Encapsulates: "ohttp_bhttp_request", Openers: []string{GatewayName}},
				},
			},
			{
				Name: "ohttp_forward",
				Doc:  "the relay's forward of the same envelope",
				Fields: []schema.Field{
					{Name: "relay_addr", Label: schema.Routing},
					{Name: "sealed_request", Label: schema.Opaque, Encapsulates: "ohttp_bhttp_request", Openers: []string{GatewayName}},
				},
			},
			{
				Name: "ohttp_bhttp_request",
				Doc:  "the decapsulated binary HTTP request",
				Fields: []schema.Field{
					{Name: "path", Label: schema.Query},
					{Name: "body", Label: schema.Content},
				},
			},
			{
				Name: "ohttp_response",
				Fields: []schema.Field{
					{Name: "sealed_response", Label: schema.Opaque, Encapsulates: "ohttp_bhttp_response", Openers: []string{"Client"}},
				},
			},
			{
				Name: "ohttp_bhttp_response",
				Fields: []schema.Field{
					{Name: "body", Label: schema.Content},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Client", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: "ohttp_request", Fields: []string{"client_addr"}}},
				Receives: []schema.Use{
					{Message: "ohttp_response", Fields: []string{"sealed_response"}},
					{Message: "ohttp_bhttp_response", Fields: []string{"body"}},
				},
			},
			{
				Name: RelayName,
				Receives: []schema.Use{
					{Message: "ohttp_request", Fields: []string{"client_addr"}},
					{Message: "ohttp_response"},
				},
				Sends: []schema.Use{
					{Message: "ohttp_forward", Fields: []string{"relay_addr"}},
					{Message: "ohttp_response"},
				},
			},
			{
				Name: GatewayName,
				Receives: []schema.Use{
					{Message: "ohttp_forward", Fields: []string{"relay_addr", "sealed_request"}},
					{Message: "ohttp_bhttp_request", Fields: []string{"path", "body"}},
				},
				Sends: []schema.Use{{Message: "ohttp_response"}},
			},
		},
		Flows: []schema.Flow{
			{From: "Client", To: RelayName, Message: "ohttp_request", Handle: "client-leg"},
			{From: RelayName, To: GatewayName, Message: "ohttp_forward", Handle: "gateway-leg"},
			{From: GatewayName, To: RelayName, Message: "ohttp_response", Handle: "gateway-leg"},
			{From: RelayName, To: "Client", Message: "ohttp_response", Handle: "client-leg"},
		},
	}
}
