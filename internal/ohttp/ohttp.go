// Package ohttp implements Oblivious HTTP in the shape of RFC 9458,
// which the paper (§3.2.5) describes as "a generalization of ODoH":
// clients HPKE-encapsulate a binary-encoded HTTP request to a Gateway's
// published key and send it via a Relay. The relay learns the client's
// network identity but not the request; the gateway learns the request
// but sees only the relay.
//
// The encapsulated request is:
//
//	[keyID 8][enc 32][ciphertext]
//
// and the response is AES-GCM under a key exported from the request's
// HPKE context with the label "ohttp response", mirroring the RFC's
// response-key derivation.
//
// PPM (internal/ppm) uses this as its upload transport so that even the
// leader aggregator never sees client network identities.
package ohttp

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"decoupling/internal/dcrypto/hpke"
	"decoupling/internal/ledger"
)

// Default ledger entity names.
const (
	RelayName   = "Relay"
	GatewayName = "Gateway"
)

const (
	requestInfo   = "decoupling ohttp request"
	responseLabel = "ohttp response"
	respKeyLen    = 16
	keyIDLen      = 8
)

// Errors returned by the protocol.
var (
	ErrMalformed  = errors.New("ohttp: malformed encapsulated message")
	ErrUnknownKey = errors.New("ohttp: unknown key id")
)

// Request is a minimal binary HTTP request (RFC 9292 in spirit).
type Request struct {
	Method string
	Path   string
	Body   []byte
}

// Marshal encodes the request.
func (r *Request) Marshal() []byte {
	out := make([]byte, 0, 1+len(r.Method)+2+len(r.Path)+4+len(r.Body))
	out = append(out, byte(len(r.Method)))
	out = append(out, r.Method...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r.Path)))
	out = append(out, r.Path...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Body)))
	return append(out, r.Body...)
}

// UnmarshalRequest decodes a request.
func UnmarshalRequest(data []byte) (*Request, error) {
	if len(data) < 1 {
		return nil, ErrMalformed
	}
	n := int(data[0])
	data = data[1:]
	if len(data) < n+2 {
		return nil, ErrMalformed
	}
	r := &Request{Method: string(data[:n])}
	data = data[n:]
	n = int(binary.BigEndian.Uint16(data))
	data = data[2:]
	if len(data) < n+4 {
		return nil, ErrMalformed
	}
	r.Path = string(data[:n])
	data = data[n:]
	n = int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) != n {
		return nil, ErrMalformed
	}
	r.Body = append([]byte(nil), data...)
	return r, nil
}

// Response is a minimal binary HTTP response.
type Response struct {
	Status int
	Body   []byte
}

// Marshal encodes the response.
func (r *Response) Marshal() []byte {
	out := make([]byte, 0, 2+4+len(r.Body))
	out = binary.BigEndian.AppendUint16(out, uint16(r.Status))
	out = binary.BigEndian.AppendUint32(out, uint32(len(r.Body)))
	return append(out, r.Body...)
}

// UnmarshalResponse decodes a response.
func UnmarshalResponse(data []byte) (*Response, error) {
	if len(data) < 6 {
		return nil, ErrMalformed
	}
	r := &Response{Status: int(binary.BigEndian.Uint16(data))}
	n := int(binary.BigEndian.Uint32(data[2:]))
	if len(data[6:]) != n {
		return nil, ErrMalformed
	}
	r.Body = append([]byte(nil), data[6:]...)
	return r, nil
}

// Handler serves decapsulated requests at the gateway's backend.
type Handler func(req *Request) *Response

// Gateway decapsulates requests and serves them through Inner.
type Gateway struct {
	Name  string
	kp    *hpke.KeyPair
	keyID []byte
	lg    *ledger.Ledger
	Inner Handler

	mu      sync.Mutex
	handled int
}

// NewGateway creates a gateway with a fresh key config.
func NewGateway(name string, inner Handler, lg *ledger.Ledger) (*Gateway, error) {
	kp, err := hpke.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("ohttp: gateway key: %w", err)
	}
	sum := sha256.Sum256(kp.PublicKey())
	return &Gateway{Name: name, kp: kp, keyID: sum[:keyIDLen], lg: lg, Inner: inner}, nil
}

// KeyConfig returns the gateway's (keyID, public key).
func (g *Gateway) KeyConfig() (keyID, pub []byte) {
	return append([]byte(nil), g.keyID...), g.kp.PublicKey()
}

// Handled reports successfully served requests.
func (g *Gateway) Handled() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.handled
}

// HandleEncapsulated decapsulates one request from the named party and
// returns the encrypted response.
func (g *Gateway) HandleEncapsulated(from string, raw []byte) ([]byte, error) {
	if len(raw) < keyIDLen+hpke.NEnc+16 {
		return nil, ErrMalformed
	}
	if !bytes.Equal(raw[:keyIDLen], g.keyID) {
		return nil, ErrUnknownKey
	}
	enc := raw[keyIDLen : keyIDLen+hpke.NEnc]
	ctx, err := hpke.SetupRecipient(enc, g.kp, []byte(requestInfo))
	if err != nil {
		return nil, err
	}
	plain, err := ctx.Open(nil, raw[keyIDLen+hpke.NEnc:])
	if err != nil {
		return nil, err
	}
	req, err := UnmarshalRequest(plain)
	if err != nil {
		return nil, err
	}
	if g.lg != nil {
		h := ledger.ConnHandle(from, g.Name)
		g.lg.SawIdentity(g.Name, from, h)
		g.lg.SawData(g.Name, req.Method+" "+req.Path, h)
		g.lg.SawData(g.Name, string(req.Body), h)
	}
	resp := g.Inner(req)
	if resp == nil {
		resp = &Response{Status: 500}
	}
	respKey := ctx.Export([]byte(responseLabel), respKeyLen)
	sealed, err := hpke.SealSymmetric(respKey, nil, resp.Marshal())
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.handled++
	g.mu.Unlock()
	return sealed, nil
}

// Relay forwards encapsulated requests without being able to read them.
type Relay struct {
	Name    string
	Gateway *Gateway
	lg      *ledger.Ledger

	mu        sync.Mutex
	forwarded int
}

// NewRelay creates a relay in front of gateway.
func NewRelay(name string, gateway *Gateway, lg *ledger.Ledger) *Relay {
	return &Relay{Name: name, Gateway: gateway, lg: lg}
}

// Forwarded reports relayed request count.
func (r *Relay) Forwarded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.forwarded
}

// Forward relays one encapsulated request from clientAddr.
func (r *Relay) Forward(clientAddr string, raw []byte) ([]byte, error) {
	if r.lg != nil {
		clientLeg := ledger.ConnHandle(clientAddr, r.Name)
		gatewayLeg := ledger.ConnHandle(r.Name, r.Gateway.Name)
		r.lg.SawIdentity(r.Name, clientAddr, clientLeg)
		r.lg.SawData(r.Name, "ciphertext:"+ledger.Hash(raw), clientLeg, gatewayLeg)
	}
	resp, err := r.Gateway.HandleEncapsulated(r.Name, raw)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.forwarded++
	r.mu.Unlock()
	return resp, nil
}

// ForwardFunc relays an encapsulated request.
type ForwardFunc func(clientAddr string, raw []byte) ([]byte, error)

// Client encapsulates requests to a gateway key config.
type Client struct {
	ID    string
	keyID []byte
	pub   []byte
}

// NewClient creates a client for the gateway's key config.
func NewClient(id string, keyID, pub []byte) *Client {
	return &Client{ID: id, keyID: keyID, pub: pub}
}

// Do sends one request through forward and decrypts the response.
func (c *Client) Do(req *Request, forward ForwardFunc) (*Response, error) {
	enc, ctx, err := hpke.SetupSender(c.pub, []byte(requestInfo))
	if err != nil {
		return nil, err
	}
	raw := make([]byte, 0, keyIDLen+len(enc))
	raw = append(raw, c.keyID...)
	raw = append(raw, enc...)
	raw = append(raw, ctx.Seal(nil, req.Marshal())...)

	sealedResp, err := forward(c.ID, raw)
	if err != nil {
		return nil, err
	}
	respKey := ctx.Export([]byte(responseLabel), respKeyLen)
	plain, err := hpke.OpenSymmetric(respKey, nil, sealedResp)
	if err != nil {
		return nil, err
	}
	return UnmarshalResponse(plain)
}
