package ohttp

import (
	"fmt"
	"testing"
	"testing/quick"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

func echoGateway(t testing.TB, lg *ledger.Ledger) (*Relay, *Gateway) {
	t.Helper()
	g, err := NewGateway(GatewayName, func(req *Request) *Response {
		return &Response{Status: 200, Body: append([]byte("echo:"), req.Body...)}
	}, lg)
	if err != nil {
		t.Fatal(err)
	}
	return NewRelay(RelayName, g, lg), g
}

func TestRoundTrip(t *testing.T) {
	relay, g := echoGateway(t, nil)
	keyID, pub := g.KeyConfig()
	c := NewClient("client-1", keyID, pub)
	resp, err := c.Do(&Request{Method: "POST", Path: "/collect", Body: []byte("payload")}, relay.Forward)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "echo:payload" {
		t.Errorf("resp = %+v", resp)
	}
	if relay.Forwarded() != 1 || g.Handled() != 1 {
		t.Errorf("forwarded=%d handled=%d", relay.Forwarded(), g.Handled())
	}
}

func TestWrongKeyIDRejected(t *testing.T) {
	relay, g := echoGateway(t, nil)
	_, pub := g.KeyConfig()
	c := NewClient("client-1", []byte("12345678"), pub)
	if _, err := c.Do(&Request{Method: "GET", Path: "/"}, relay.Forward); err == nil {
		t.Error("wrong key id accepted")
	}
}

func TestGarbageRejected(t *testing.T) {
	_, g := echoGateway(t, nil)
	if _, err := g.HandleEncapsulated("relay", []byte("short")); err != ErrMalformed {
		t.Errorf("err = %v", err)
	}
	keyID, _ := g.KeyConfig()
	junk := append(append([]byte(nil), keyID...), make([]byte, 64)...)
	if _, err := g.HandleEncapsulated("relay", junk); err == nil {
		t.Error("undecryptable body accepted")
	}
}

func TestRequestResponseEncodingRoundTrip(t *testing.T) {
	f := func(method, path string, body []byte) bool {
		if len(method) > 255 || len(path) > 65535 {
			return true
		}
		req := &Request{Method: method, Path: path, Body: body}
		got, err := UnmarshalRequest(req.Marshal())
		if err != nil {
			return false
		}
		if got.Method != method || got.Path != path || string(got.Body) != string(body) {
			return false
		}
		resp := &Response{Status: 207, Body: body}
		gotR, err := UnmarshalResponse(resp.Marshal())
		return err == nil && gotR.Status == 207 && string(gotR.Body) == string(body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalFuzzSafety(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = UnmarshalRequest(data)
		_, _ = UnmarshalResponse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestKnowledgeSplit: the relay is (▲, ⊙), the gateway (△, ●) — the
// paper's "decoupling the client's network identity from its individual
// contribution" (§3.2.5).
func TestKnowledgeSplit(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	relay, g := echoGateway(t, lg)
	keyID, pub := g.KeyConfig()

	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("client-%d", i)
		report := fmt.Sprintf("sensitive report %d", i)
		cls.RegisterIdentity(who, who, "", core.Sensitive)
		cls.RegisterData(report, who, "", core.Sensitive)
		c := NewClient(who, keyID, pub)
		if _, err := c.Do(&Request{Method: "POST", Path: "/collect", Body: []byte(report)}, relay.Forward); err != nil {
			t.Fatal(err)
		}
	}

	relayTuple := lg.DeriveTuple(RelayName, core.Tuple{core.NonSensID(), core.NonSensData()})
	if !relayTuple.Equal(core.Tuple{core.SensID(), core.NonSensData()}) {
		t.Errorf("relay tuple = %s, want (▲, ⊙)", relayTuple.Symbol())
	}
	gwTuple := lg.DeriveTuple(GatewayName, core.Tuple{core.NonSensID(), core.NonSensData()})
	if !gwTuple.Equal(core.Tuple{core.NonSensID(), core.SensData()}) {
		t.Errorf("gateway tuple = %s, want (△, ●)", gwTuple.Symbol())
	}

	// Relay alone cannot link; relay+gateway collusion can.
	if rate := adversary.LinkageRate(adversary.LinkSubjects(lg.Observations(), []string{RelayName})); rate != 0 {
		t.Errorf("relay alone linked %.0f%%", rate*100)
	}
	if rate := adversary.LinkageRate(adversary.LinkSubjects(lg.Observations(), []string{RelayName, GatewayName})); rate == 0 {
		t.Error("relay+gateway collusion failed to link")
	}
}

func BenchmarkRoundTrip(b *testing.B) {
	relay, g := echoGateway(b, nil)
	keyID, pub := g.KeyConfig()
	c := NewClient("bench", keyID, pub)
	req := &Request{Method: "POST", Path: "/collect", Body: make([]byte, 256)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(req, relay.Forward); err != nil {
			b.Fatal(err)
		}
	}
}
