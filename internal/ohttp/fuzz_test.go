package ohttp

import "testing"

func FuzzUnmarshalRequest(f *testing.F) {
	r := &Request{Method: "POST", Path: "/collect", Body: []byte("payload")}
	f.Add(r.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := UnmarshalRequest(data)
		if err != nil {
			return
		}
		back, err := UnmarshalRequest(req.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if back.Method != req.Method || back.Path != req.Path || string(back.Body) != string(req.Body) {
			t.Fatal("request changed across round trip")
		}
	})
}

func FuzzGatewayHandleEncapsulated(f *testing.F) {
	g, err := NewGateway("fuzz-gw", func(req *Request) *Response {
		return &Response{Status: 200}
	}, nil)
	if err != nil {
		f.Fatal(err)
	}
	keyID, _ := g.KeyConfig()
	f.Add(append(keyID, make([]byte, 64)...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = g.HandleEncapsulated("fuzzer", data)
	})
}
