package adversary

import (
	"sort"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// LinkSubjectsEvidence runs the same coalition linkage attack as
// LinkSubjects but additionally reconstructs, for every linked
// subject, the union-find merge path: the minimal alternating chain
// observation → shared handle → observation … proving the coalition
// joined a sensitive identity to sensitive data. The chain is found by
// breadth-first search over the bipartite observation/handle graph, so
// it is a shortest such chain; iteration orders are fixed, making the
// result deterministic for a given observation slice.
//
// The Linked verdicts are identical to LinkSubjects (both report
// connectivity of the same partition); the chosen identity/data values
// may differ, because the evidence variant reports the endpoints of the
// shortest chain rather than the first pair scanned.
func LinkSubjectsEvidence(obs []ledger.Observation, coalition []string) []LinkResult {
	members := map[string]bool{}
	for _, m := range coalition {
		members[m] = true
	}

	// Adjacency: observation index -> handles, handle -> observation
	// indices (ascending, the order we appended them).
	handleObs := map[string][]int{}
	var pool []int
	for i, o := range obs {
		if !members[o.Observer] {
			continue
		}
		pool = append(pool, i)
		for _, h := range o.Handles {
			handleObs[h] = append(handleObs[h], i)
		}
	}

	idSides := map[string][]int{}
	dataSides := map[string]map[int]bool{}
	for _, i := range pool {
		o := obs[i]
		if o.Subject == "" {
			continue
		}
		switch {
		case o.Kind == core.Identity && o.Level == core.Sensitive:
			idSides[o.Subject] = append(idSides[o.Subject], i)
		case o.Kind == core.Data && o.Level >= core.Partial:
			if dataSides[o.Subject] == nil {
				dataSides[o.Subject] = map[int]bool{}
			}
			dataSides[o.Subject][i] = true
		}
	}

	subjects := make([]string, 0, len(idSides))
	for s := range idSides {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)

	var results []LinkResult
	for _, s := range subjects {
		r := LinkResult{Subject: s}
		if len(idSides[s]) > 0 {
			r.IdentityValue = obs[idSides[s][0]].Value
		}
		for _, start := range idSides[s] {
			if path := shortestChain(obs, handleObs, start, dataSides[s]); path != nil {
				r.Linked = true
				r.Path = path
				r.IdentityValue = obs[path[0].Obs].Value
				r.DataValue = obs[path[len(path)-1].Obs].Value
				break
			}
		}
		if !r.Linked && len(dataSides[s]) > 0 {
			// Deterministic representative: the earliest data observation.
			min := -1
			for i := range dataSides[s] {
				if min < 0 || i < min {
					min = i
				}
			}
			r.DataValue = obs[min].Value
		}
		results = append(results, r)
	}
	return results
}

// shortestChain BFSes from the start observation to any observation in
// targets, stepping observation → handle → observation. It returns the
// hop list including start and the reached target, or nil when no
// target is reachable. A start that is itself a target yields a
// single-hop chain.
func shortestChain(obs []ledger.Observation, handleObs map[string][]int, start int, targets map[int]bool) []Hop {
	if targets[start] {
		return []Hop{{Obs: start}}
	}
	parents := map[int]chainParent{start: {prev: -1}}
	frontier := []int{start}
	for len(frontier) > 0 {
		var next []int
		for _, i := range frontier {
			for _, h := range obs[i].Handles {
				for _, j := range handleObs[h] {
					if _, seen := parents[j]; seen {
						continue
					}
					parents[j] = chainParent{prev: i, handle: h}
					if targets[j] {
						return buildChain(parents, j)
					}
					next = append(next, j)
				}
			}
		}
		frontier = next
	}
	return nil
}

// chainParent records how BFS first reached an observation: from which
// previous observation, over which shared handle.
type chainParent struct {
	prev   int
	handle string
}

// buildChain walks parent pointers back from the reached data
// observation to the identity start, emitting hops in forward order.
func buildChain(parents map[int]chainParent, end int) []Hop {
	var rev []Hop
	for i := end; i >= 0; {
		p := parents[i]
		rev = append(rev, Hop{Obs: i, Handle: p.handle})
		i = p.prev
	}
	out := make([]Hop, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	// The handle recorded on each node is the edge *into* it; shift so
	// each hop carries the handle shared with the next observation, and
	// the final hop carries none.
	for i := 0; i < len(out)-1; i++ {
		out[i].Handle = out[i+1].Handle
	}
	out[len(out)-1].Handle = ""
	return out
}
