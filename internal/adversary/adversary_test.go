package adversary

import (
	"fmt"
	"math"
	mrand "math/rand"
	"testing"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// mathrandNew returns a seeded deterministic RNG for attack tests.
func mathrandNew(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

// buildODoHStyleLedger creates the observation pattern of a proxy/target
// split: proxy sees alice's identity + ciphertext, target sees the query
// plaintext; the two legs share a handle only between proxy and target.
func buildODoHStyleLedger() *ledger.Ledger {
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("10.0.0.7", "alice", "", core.Sensitive)
	cls.RegisterData("secret.example.com.", "alice", "", core.Sensitive)
	lg := ledger.New(cls, nil)
	leg := ledger.ConnHandle("proxy", "target", "txn1")
	lg.SawIdentity("Proxy", "10.0.0.7", "client-leg")
	lg.SawData("Proxy", "ciphertext-xyz", "client-leg", leg)
	lg.SawIdentity("Target", "proxy-addr", leg)
	lg.SawData("Target", "secret.example.com.", leg)
	return lg
}

func TestLinkSubjectsRequiresBothSides(t *testing.T) {
	lg := buildODoHStyleLedger()
	// Proxy alone: has identity, no sensitive data.
	res := LinkSubjects(lg.Observations(), []string{"Proxy"})
	if LinkageRate(res) != 0 {
		t.Errorf("proxy alone linked: %+v", res)
	}
	// Target alone: has data but never a sensitive identity -> no
	// subject rows at all (no identity side).
	res = LinkSubjects(lg.Observations(), []string{"Target"})
	if len(res) != 0 {
		t.Errorf("target alone produced results: %+v", res)
	}
}

func TestLinkSubjectsCoalitionJoinsViaHandles(t *testing.T) {
	lg := buildODoHStyleLedger()
	res := LinkSubjects(lg.Observations(), []string{"Proxy", "Target"})
	if len(res) != 1 || !res[0].Linked {
		t.Fatalf("coalition failed to link: %+v", res)
	}
	if res[0].Subject != "alice" || res[0].IdentityValue != "10.0.0.7" || res[0].DataValue != "secret.example.com." {
		t.Errorf("result = %+v", res[0])
	}
}

// TestLinkSubjectsBrokenChain: if the proxy and target legs share no
// handle (e.g. re-encryption produced fresh bytes and no shared
// connection), even a full coalition cannot join.
func TestLinkSubjectsBrokenChain(t *testing.T) {
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("10.0.0.7", "alice", "", core.Sensitive)
	cls.RegisterData("secret.example.com.", "alice", "", core.Sensitive)
	lg := ledger.New(cls, nil)
	lg.SawIdentity("Signer", "10.0.0.7", "withdrawal-17")
	lg.SawData("Verifier", "secret.example.com.", "deposit-93")
	res := LinkSubjects(lg.Observations(), []string{"Signer", "Verifier"})
	if LinkageRate(res) != 0 {
		t.Errorf("unlinkable observations were linked: %+v", res)
	}
}

// TestSingleEntitySessionLinks: the VPN failure mode — one entity sees
// identity and data on the same session, so its own records share a
// handle and link without any collusion.
func TestSingleEntitySessionLinks(t *testing.T) {
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("10.0.0.7", "alice", "", core.Sensitive)
	cls.RegisterData("secret.example.com.", "alice", "", core.Sensitive)
	lg := ledger.New(cls, nil)
	session := ledger.ConnHandle("10.0.0.7", "vpn")
	lg.SawIdentity("VPN", "10.0.0.7", session)
	lg.SawData("VPN", "secret.example.com.", session)
	res := LinkSubjects(lg.Observations(), []string{"VPN"})
	if LinkageRate(res) != 1 {
		t.Errorf("coupled entity failed to link its session records: %+v", res)
	}
	// Rows from unrelated sessions do not merge just by cohabiting one
	// database: a second subject with disjoint handles stays unlinked to
	// alice's data even though the same entity holds all rows.
	cls.RegisterIdentity("10.0.0.8", "bob", "", core.Sensitive)
	lg.SawIdentity("VPN", "10.0.0.8", ledger.ConnHandle("10.0.0.8", "vpn"))
	res = LinkSubjects(lg.Observations(), []string{"VPN"})
	for _, r := range res {
		if r.Subject == "bob" && r.Linked {
			t.Errorf("bob linked without any data observation: %+v", r)
		}
	}
}

func TestPartialDataCountsForLinkage(t *testing.T) {
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("10.0.0.7", "alice", "", core.Sensitive)
	cls.RegisterData("example.com.", "alice", "", core.Partial)
	lg := ledger.New(cls, nil)
	lg.SawIdentity("R1", "10.0.0.7", "conn")
	lg.SawData("R2", "example.com.", "conn")
	res := LinkSubjects(lg.Observations(), []string{"R1", "R2"})
	if LinkageRate(res) != 1 {
		t.Errorf("partial data not linked: %+v", res)
	}
}

func TestMultiSubjectLinkage(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	for i := 0; i < 10; i++ {
		subj := fmt.Sprintf("user%d", i)
		addr := fmt.Sprintf("10.0.0.%d", i)
		site := fmt.Sprintf("site%d.test.", i)
		cls.RegisterIdentity(addr, subj, "", core.Sensitive)
		cls.RegisterData(site, subj, "", core.Sensitive)
		lg.SawIdentity("Relay1", addr, fmt.Sprintf("conn%d", i))
		// Only even subjects have a linkable chain.
		if i%2 == 0 {
			lg.SawData("Relay2", site, fmt.Sprintf("conn%d", i))
		} else {
			lg.SawData("Relay2", site, fmt.Sprintf("other%d", i))
		}
	}
	res := LinkSubjects(lg.Observations(), []string{"Relay1", "Relay2"})
	if got := LinkageRate(res); got != 0.5 {
		t.Errorf("linkage rate = %v, want 0.5", got)
	}
}

func TestTimingCorrelateFIFO(t *testing.T) {
	var entries, exits []Event
	for i := 0; i < 20; i++ {
		s := fmt.Sprintf("u%d", i)
		entries = append(entries, Event{Time: time.Duration(i) * time.Millisecond, Subject: s})
		exits = append(exits, Event{Time: time.Duration(100+i) * time.Millisecond, Subject: s})
	}
	correct, total := TimingCorrelate(entries, exits)
	if correct != 20 || total != 20 {
		t.Errorf("FIFO relay: correct=%d total=%d, want 20/20", correct, total)
	}
}

func TestTimingCorrelateShuffledBatch(t *testing.T) {
	// All messages exit at the same instant but in permuted order: the
	// rank-order attack should degrade (can't be perfect for a
	// nontrivial derangement).
	var entries, exits []Event
	perm := []int{3, 1, 4, 0, 2}
	for i := 0; i < 5; i++ {
		entries = append(entries, Event{Time: time.Duration(i) * time.Millisecond, Subject: fmt.Sprintf("u%d", i)})
	}
	for _, p := range perm {
		exits = append(exits, Event{Time: 100 * time.Millisecond, Subject: fmt.Sprintf("u%d", p)})
	}
	correct, total := TimingCorrelate(entries, exits)
	if total != 5 {
		t.Fatalf("total = %d", total)
	}
	if correct >= 5 {
		t.Errorf("shuffled batch fully correlated (correct=%d)", correct)
	}
}

func TestSizeLink(t *testing.T) {
	entries := map[string]int{"a": 100, "b": 200, "c": 512, "d": 512}
	exits := map[string]int{"a": 100, "b": 200, "c": 512, "d": 512}
	if got := SizeLink(entries, exits); got != 2 {
		t.Errorf("unique size links = %d, want 2 (a and b; c/d share a size)", got)
	}
	// Fixed-size cells: nothing unique.
	fixedE := map[string]int{"a": 512, "b": 512, "c": 512}
	fixedX := map[string]int{"a": 512, "b": 512, "c": 512}
	if got := SizeLink(fixedE, fixedX); got != 0 {
		t.Errorf("fixed cells leaked %d unique links", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(map[string]int{"a": 1, "b": 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Entropy(uniform 2) = %v, want 1", got)
	}
	if got := Entropy(map[string]int{"a": 4}); got != 0 {
		t.Errorf("Entropy(point mass) = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v", got)
	}
	u8 := map[string]int{}
	for i := 0; i < 8; i++ {
		u8[fmt.Sprint(i)] = 3
	}
	if got := Entropy(u8); math.Abs(got-3) > 1e-9 {
		t.Errorf("Entropy(uniform 8) = %v, want 3", got)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	u := map[string]int{"a": 5, "b": 5, "c": 5, "d": 5}
	if got := NormalizedEntropy(u); math.Abs(got-1) > 1e-9 {
		t.Errorf("NormalizedEntropy(uniform) = %v", got)
	}
	skew := map[string]int{"a": 97, "b": 1, "c": 1, "d": 1}
	if got := NormalizedEntropy(skew); got > 0.5 {
		t.Errorf("NormalizedEntropy(skewed) = %v, want < 0.5", got)
	}
	if got := NormalizedEntropy(map[string]int{"a": 3}); got != 0 {
		t.Errorf("NormalizedEntropy(single) = %v", got)
	}
}

func TestAnonymitySet(t *testing.T) {
	view := map[string]string{
		"alice": "exit-1",
		"bob":   "exit-1",
		"carol": "exit-1",
		"dave":  "exit-2",
	}
	sets := AnonymitySet(view)
	if sets["alice"] != 3 || sets["dave"] != 1 {
		t.Errorf("sets = %v", sets)
	}
}

func TestLinkageRateEmpty(t *testing.T) {
	if LinkageRate(nil) != 0 {
		t.Error("empty results should rate 0")
	}
}

func BenchmarkLinkSubjects(b *testing.B) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	for i := 0; i < 500; i++ {
		subj := fmt.Sprintf("user%d", i)
		addr := fmt.Sprintf("10.0.%d.%d", i/256, i%256)
		site := fmt.Sprintf("site%d.test.", i)
		cls.RegisterIdentity(addr, subj, "", core.Sensitive)
		cls.RegisterData(site, subj, "", core.Sensitive)
		lg.SawIdentity("R1", addr, fmt.Sprintf("conn%d", i))
		lg.SawData("R2", site, fmt.Sprintf("conn%d", i))
	}
	obs := lg.Observations()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinkSubjects(obs, []string{"R1", "R2"})
	}
}

// TestStatisticalDisclosure: over many observed rounds, alice's true
// partner rises to the top of the scores even though every individual
// round hides the correspondence.
func TestStatisticalDisclosure(t *testing.T) {
	rng := mathrandNew(99)
	var rounds []Round
	receivers := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}
	for i := 0; i < 400; i++ {
		var r Round
		aliceIn := i%2 == 0
		if aliceIn {
			r.Senders = append(r.Senders, "alice")
			r.Receivers = append(r.Receivers, "bob") // alice always writes bob
		}
		// Background: 3 random senders to random receivers.
		for j := 0; j < 3; j++ {
			r.Senders = append(r.Senders, fmt.Sprintf("noise%d", rng.Intn(20)))
			r.Receivers = append(r.Receivers, receivers[rng.Intn(len(receivers))])
		}
		rounds = append(rounds, r)
	}
	scored := StatisticalDisclosure(rounds, "alice")
	if len(scored) == 0 {
		t.Fatal("no scores")
	}
	if scored[0].Receiver != "bob" {
		t.Errorf("top suspect = %s (%.3f), want bob", scored[0].Receiver, scored[0].Score)
	}
	if scored[0].Score < 0.5 {
		t.Errorf("bob's score = %.3f, expected strong signal", scored[0].Score)
	}
}

// TestStatisticalDisclosureDefeatedByConstantCover: if the target sends
// in EVERY round (constant-rate cover traffic), their real partner is
// statistically indistinguishable from the background.
func TestStatisticalDisclosureDefeatedByConstantCover(t *testing.T) {
	rng := mathrandNew(7)
	receivers := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}
	var rounds []Round
	for i := 0; i < 400; i++ {
		var r Round
		// Alice participates every round (cover traffic); her real
		// message goes to bob only occasionally, chaff otherwise.
		r.Senders = append(r.Senders, "alice")
		if i%8 == 0 {
			r.Receivers = append(r.Receivers, "bob")
		} else {
			r.Receivers = append(r.Receivers, receivers[rng.Intn(len(receivers))])
		}
		for j := 0; j < 3; j++ {
			r.Senders = append(r.Senders, fmt.Sprintf("noise%d", rng.Intn(20)))
			r.Receivers = append(r.Receivers, receivers[rng.Intn(len(receivers))])
		}
		rounds = append(rounds, r)
	}
	scored := StatisticalDisclosure(rounds, "alice")
	// With the target in every round, P(receiver | target) == P(receiver),
	// so every score collapses to ~0.
	for _, s := range scored {
		if s.Score > 0.05 {
			t.Errorf("receiver %s scored %.3f despite constant cover", s.Receiver, s.Score)
		}
	}
}

func TestStatisticalDisclosureEmpty(t *testing.T) {
	if got := StatisticalDisclosure(nil, "alice"); got != nil {
		t.Errorf("scores for no rounds: %v", got)
	}
	rounds := []Round{{Senders: []string{"carol"}, Receivers: []string{"r"}}}
	if got := StatisticalDisclosure(rounds, "alice"); got != nil {
		t.Errorf("scores for absent target: %v", got)
	}
}
