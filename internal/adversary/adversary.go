// Package adversary implements the attacks the paper's analysis is
// defined against: collusion between entities (§4.1, §5.2), passive
// traffic analysis by timing and size (§4.3), and the information
// metrics used to quantify partial knowledge (anonymity sets, entropy).
//
// The collusion engine works over ledger observations: a coalition can
// join two facts only if a chain of shared linkage handles connects
// them. This is the operational meaning of decoupling — a mix
// re-encrypts and so breaks the handle chain; a VPN terminates both
// sides of a session and so holds records that share the session
// handle, linking everything it carries.
package adversary

import (
	"math"
	"sort"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// LinkResult reports whether a coalition can tie one subject's sensitive
// identity to their sensitive data.
type LinkResult struct {
	Subject       string
	IdentityValue string
	DataValue     string
	Linked        bool
	// Path is the union-find merge path proving the link: the minimal
	// chain of coalition observations, each sharing a handle with the
	// next, from a sensitive identity observation of the subject to a
	// sensitive (or partial) data observation. Populated only by
	// LinkSubjectsEvidence; nil from the fast LinkSubjects.
	Path []Hop
}

// Hop is one step of a linkage evidence chain: an observation (an
// index into the slice passed to LinkSubjectsEvidence) and the handle
// it shares with the next hop's observation ("" on the final hop).
type Hop struct {
	Obs    int
	Handle string
}

// unionFind is a tiny string-keyed disjoint-set.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) { u.parent[u.find(a)] = u.find(b) }

// LinkSubjects runs the coalition linkage attack: given all recorded
// observations and the names of colluding entities, it determines for
// each subject whether the coalition can connect a sensitive identity
// observation to a sensitive (or partial) data observation through a
// chain of shared linkage handles. Records that share no handle are two
// unrelated rows even inside one entity's database: a VPN couples its
// clients because both sides of a session carry the same session
// handle, not merely because both rows sit on the same disk.
func LinkSubjects(obs []ledger.Observation, coalition []string) []LinkResult {
	members := map[string]bool{}
	for _, m := range coalition {
		members[m] = true
	}

	uf := newUnionFind()
	// Nodes: "obs:<i>" and "h:<handle>".
	var pool []int
	for i, o := range obs {
		if !members[o.Observer] {
			continue
		}
		pool = append(pool, i)
		node := obsNode(i)
		for _, h := range o.Handles {
			uf.union(node, "h:"+h)
		}
	}

	type side struct {
		value string
		node  string
	}
	idSides := map[string][]side{}
	dataSides := map[string][]side{}
	for _, i := range pool {
		o := obs[i]
		if o.Subject == "" {
			continue
		}
		switch {
		case o.Kind == core.Identity && o.Level == core.Sensitive:
			idSides[o.Subject] = append(idSides[o.Subject], side{o.Value, obsNode(i)})
		case o.Kind == core.Data && o.Level >= core.Partial:
			dataSides[o.Subject] = append(dataSides[o.Subject], side{o.Value, obsNode(i)})
		}
	}

	subjects := make([]string, 0, len(idSides))
	for s := range idSides {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)

	var results []LinkResult
	for _, s := range subjects {
		r := LinkResult{Subject: s}
		if len(idSides[s]) > 0 {
			r.IdentityValue = idSides[s][0].value
		}
	outer:
		for _, id := range idSides[s] {
			for _, d := range dataSides[s] {
				if uf.find(id.node) == uf.find(d.node) {
					r.Linked = true
					r.IdentityValue = id.value
					r.DataValue = d.value
					break outer
				}
			}
		}
		if !r.Linked && len(dataSides[s]) > 0 {
			r.DataValue = dataSides[s][0].value
		}
		results = append(results, r)
	}
	return results
}

func obsNode(i int) string {
	// Small manual itoa avoids fmt in the hot path.
	if i == 0 {
		return "obs:0"
	}
	var digits [20]byte
	pos := len(digits)
	for i > 0 {
		pos--
		digits[pos] = byte('0' + i%10)
		i /= 10
	}
	return "obs:" + string(digits[pos:])
}

// LinkageRate returns the fraction of subjects the coalition linked.
func LinkageRate(results []LinkResult) float64 {
	if len(results) == 0 {
		return 0
	}
	linked := 0
	for _, r := range results {
		if r.Linked {
			linked++
		}
	}
	return float64(linked) / float64(len(results))
}

// Event is a timed protocol event attributed (by ground truth) to a
// subject — a message entering or leaving an anonymity system.
type Event struct {
	Time    time.Duration
	Subject string
}

// TimingCorrelate mounts the rank-order timing attack: the adversary
// observes when messages enter and when they exit and pairs them by
// arrival order (the optimal strategy against a FIFO relay). It returns
// how many pairings identify the correct subject. Batch-and-shuffle
// forwarding (Chaum's defense, §3.1.2) degrades this toward random
// guessing within each batch.
func TimingCorrelate(entries, exits []Event) (correct, total int) {
	es := append([]Event(nil), entries...)
	xs := append([]Event(nil), exits...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Time < es[j].Time })
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].Time < xs[j].Time })
	n := len(es)
	if len(xs) < n {
		n = len(xs)
	}
	for i := 0; i < n; i++ {
		if es[i].Subject == xs[i].Subject {
			correct++
		}
	}
	return correct, n
}

// SizeLink counts how many entry events can be uniquely matched to an
// exit event by payload size alone. Fixed-size cells (Tor's defense,
// §4.3) drive uniqueness to zero.
func SizeLink(entrySizes, exitSizes map[string]int) (unique int) {
	// entrySizes/exitSizes map subject -> observed size.
	bySize := map[int][]string{}
	for s, size := range exitSizes {
		bySize[size] = append(bySize[size], s)
	}
	for subject, size := range entrySizes {
		candidates := bySize[size]
		if len(candidates) == 1 && candidates[0] == subject {
			unique++
		}
	}
	return unique
}

// Entropy returns the Shannon entropy (bits) of a count distribution.
func Entropy(counts map[string]int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns Entropy divided by its maximum (log2 of the
// support size), in [0, 1]; 1 means the distribution is uniform.
func NormalizedEntropy(counts map[string]int) float64 {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	if n <= 1 {
		return 0
	}
	return Entropy(counts) / math.Log2(float64(n))
}

// AnonymitySet computes, for each subject, the number of candidate
// subjects an observer cannot distinguish them from, given the
// observer's view as a map from subject to the observable value (e.g.
// pseudonym, exit address). Subjects sharing a value form one set.
func AnonymitySet(view map[string]string) map[string]int {
	sizes := map[string]int{}
	for _, v := range view {
		sizes[v]++
	}
	out := map[string]int{}
	for s, v := range view {
		out[s] = sizes[v]
	}
	return out
}

// Round is one mix batch as a passive observer sees it: who sent into
// the mix and who received out of it during the round. Contents are
// unreadable; membership is not.
type Round struct {
	Senders   []string
	Receivers []string
}

// StatisticalDisclosure mounts the long-term intersection attack
// against a batching mix (Danezis' statistical disclosure, the
// strongest of the §4.3 "limits of what is feasible to infer" class):
// over many rounds, the receivers co-occurring with a target sender
// stand out statistically from the background. It returns receivers
// ranked by score = P(receiver | target sends) - P(receiver overall).
// Batching hides WHICH message in a round is the target's, but not THAT
// the target participated — only cover traffic (chaff) or per-round
// receiver diversity dilutes this signal.
func StatisticalDisclosure(rounds []Round, target string) []ScoredReceiver {
	withTarget := map[string]int{}
	overall := map[string]int{}
	targetRounds, totalRounds := 0, 0
	for _, r := range rounds {
		totalRounds++
		participated := false
		for _, s := range r.Senders {
			if s == target {
				participated = true
				break
			}
		}
		if participated {
			targetRounds++
		}
		seen := map[string]bool{}
		for _, rc := range r.Receivers {
			if seen[rc] {
				continue
			}
			seen[rc] = true
			overall[rc]++
			if participated {
				withTarget[rc]++
			}
		}
	}
	if targetRounds == 0 || totalRounds == 0 {
		return nil
	}
	var out []ScoredReceiver
	for rc, n := range overall {
		pAll := float64(n) / float64(totalRounds)
		pWith := float64(withTarget[rc]) / float64(targetRounds)
		out = append(out, ScoredReceiver{Receiver: rc, Score: pWith - pAll})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Receiver < out[j].Receiver
	})
	return out
}

// ScoredReceiver is one candidate communication partner with its
// disclosure score.
type ScoredReceiver struct {
	Receiver string
	Score    float64
}
