package adversary

import (
	"fmt"
	"sort"

	"decoupling/internal/core"
)

// This file is the static-analysis counterpart of the observation-graph
// coalition machinery: where LinkSubjects unions concrete observations
// over concrete handles after a run, CloseStatic unions *declared*
// entities over *declared* handle classes before any run exists. The
// two must agree on every scenario — the static closure is the bound
// the measured partitions are checked against.

// StaticPartition is one connected component of the declared
// entity/handle-class graph: the set of non-user entities that could
// join their knowledge if all of them colluded, with the merged tuple
// that collusion would pool.
type StaticPartition struct {
	// Entities are the member names, sorted.
	Entities []string
	// Handles are the shared handle classes connecting them, sorted.
	Handles []string
	// Merged is the pooled tuple, including any shared secrets whose
	// complete holder set lies inside the partition.
	Merged core.Tuple
	// Coupled reports whether full collusion inside this partition
	// re-couples a sensitive identity with sensitive (or partial) data.
	Coupled bool
	// Secrets names the shared secrets the partition can reconstruct.
	Secrets []string
}

// StaticClosure is the full static coalition analysis of a declared
// system: the per-partition worst case plus the minimum-coalition
// verdict from the same exhaustive search the measured side uses.
type StaticClosure struct {
	Verdict    core.Verdict
	Partitions []StaticPartition
}

// CloseStatic computes the static coalition closure of a declared
// system (typically schema.Static.System()). Entities with declared
// handle classes are grouped by handle connectivity; the merged tuple
// per group is the upper bound on what that group's collusion yields.
// The verdict reuses core.Analyze, so static and measured coalition
// degrees are directly comparable.
func CloseStatic(sys *core.System) (StaticClosure, error) {
	verdict, err := core.Analyze(sys)
	if err != nil {
		return StaticClosure{}, fmt.Errorf("adversary: static closure: %w", err)
	}
	cl := StaticClosure{Verdict: verdict}

	var members []core.Entity
	for _, e := range sys.Entities {
		if !e.User {
			members = append(members, e)
		}
	}
	if len(members) == 0 {
		return cl, nil
	}

	// Union-find over declared handle classes. Unlike the conservative
	// measured-side rule, an entity with no declared handles forms its
	// own partition: the schema explicitly asserts it shares no join
	// key with anyone.
	parent := make([]int, len(members))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byHandle := map[string][]int{}
	for i, e := range members {
		for _, h := range e.Links {
			byHandle[h] = append(byHandle[h], i)
		}
	}
	handleNames := make([]string, 0, len(byHandle))
	for h := range byHandle {
		handleNames = append(handleNames, h)
	}
	sort.Strings(handleNames)
	for _, h := range handleNames {
		owners := byHandle[h]
		for i := 1; i < len(owners); i++ {
			parent[find(owners[0])] = find(owners[i])
		}
	}

	groups := map[int][]int{}
	for i := range members {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	// Deterministic partition order: by first member index.
	sort.Slice(roots, func(a, b int) bool { return groups[roots[a]][0] < groups[roots[b]][0] })

	for _, root := range roots {
		idxs := groups[root]
		p := StaticPartition{}
		inPartition := map[string]bool{}
		handles := map[string]bool{}
		for _, i := range idxs {
			p.Merged = p.Merged.Merge(members[i].Knows)
			p.Entities = append(p.Entities, members[i].Name)
			inPartition[members[i].Name] = true
			for _, h := range members[i].Links {
				handles[h] = true
			}
		}
		for _, sec := range sys.SharedSecrets {
			all := len(sec.Holders) > 0
			for _, h := range sec.Holders {
				if !inPartition[h] {
					all = false
					break
				}
			}
			if all {
				p.Merged = p.Merged.Merge(core.Tuple{sec.Yields})
				p.Secrets = append(p.Secrets, sec.Name)
			}
		}
		sort.Strings(p.Entities)
		for h := range handles {
			p.Handles = append(p.Handles, h)
		}
		sort.Strings(p.Handles)
		sort.Strings(p.Secrets)
		p.Coupled = p.Merged.Coupled()
		cl.Partitions = append(cl.Partitions, p)
	}
	return cl, nil
}
