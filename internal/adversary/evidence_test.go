package adversary_test

import (
	"fmt"
	"math/rand"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
)

// randomLedger builds a ledger with random observations spread over a
// few observers, subjects, and a small handle universe, so linkage is
// sometimes possible and sometimes not.
func randomLedger(rng *rand.Rand, trial int) (*ledger.Ledger, []string) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	observers := []string{"A", "B", "C", "D"}
	for i := 0; i < 40; i++ {
		subj := fmt.Sprintf("s%d", rng.Intn(5))
		obsr := observers[rng.Intn(len(observers))]
		handles := []string{}
		for h := 0; h < 1+rng.Intn(2); h++ {
			handles = append(handles, fmt.Sprintf("h%d", rng.Intn(12)))
		}
		if rng.Intn(2) == 0 {
			v := fmt.Sprintf("id-%d-%d", trial, i)
			lvl := core.Sensitive
			if rng.Intn(4) == 0 {
				lvl = core.NonSensitive
			}
			cls.RegisterIdentity(v, subj, "", lvl)
			lg.SawIdentity(obsr, v, handles...)
		} else {
			v := fmt.Sprintf("d-%d-%d", trial, i)
			lvl := core.Sensitive
			switch rng.Intn(4) {
			case 0:
				lvl = core.NonSensitive
			case 1:
				lvl = core.Partial
			}
			cls.RegisterData(v, subj, "", lvl)
			lg.SawData(obsr, v, handles...)
		}
	}
	return lg, observers
}

// TestLinkEvidencePathValidity is the property test: for random
// observation sets and coalitions, (1) LinkSubjectsEvidence agrees
// with LinkSubjects on every Linked verdict, and (2) every reported
// link carries a chain that actually proves it — consecutive
// observations share the stated handle, every observation belongs to a
// coalition member, the first is a sensitive identity of the subject,
// and the last is sensitive-or-partial data of the subject.
func TestLinkEvidencePathValidity(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		lg, observers := randomLedger(rng, trial)
		coalition := observers[:1+rng.Intn(len(observers))]
		obs := lg.Observations()

		fast := adversary.LinkSubjects(obs, coalition)
		withEv := adversary.LinkSubjectsEvidence(obs, coalition)
		if len(fast) != len(withEv) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(fast), len(withEv))
		}
		members := map[string]bool{}
		for _, m := range coalition {
			members[m] = true
		}
		for i := range fast {
			f, e := fast[i], withEv[i]
			if f.Subject != e.Subject || f.Linked != e.Linked {
				t.Fatalf("trial %d subject %q: fast Linked=%v evidence Linked=%v", trial, f.Subject, f.Linked, e.Linked)
			}
			if !e.Linked {
				if e.Path != nil {
					t.Errorf("trial %d subject %q: unlinked but path %v", trial, e.Subject, e.Path)
				}
				continue
			}
			if len(e.Path) == 0 {
				t.Fatalf("trial %d subject %q: linked without a path", trial, e.Subject)
			}
			first := obs[e.Path[0].Obs]
			last := obs[e.Path[len(e.Path)-1].Obs]
			if first.Kind != core.Identity || first.Level != core.Sensitive || first.Subject != e.Subject {
				t.Errorf("trial %d subject %q: chain starts at %+v, not a sensitive identity", trial, e.Subject, first)
			}
			if last.Kind != core.Data || last.Level < core.Partial || last.Subject != e.Subject {
				t.Errorf("trial %d subject %q: chain ends at %+v, not sensitive/partial data", trial, e.Subject, last)
			}
			for j, hop := range e.Path {
				o := obs[hop.Obs]
				if !members[o.Observer] {
					t.Errorf("trial %d subject %q hop %d: observer %q outside coalition", trial, e.Subject, j, o.Observer)
				}
				if j == len(e.Path)-1 {
					if hop.Handle != "" {
						t.Errorf("trial %d subject %q: final hop carries handle %q", trial, e.Subject, hop.Handle)
					}
					continue
				}
				if hop.Handle == "" {
					t.Errorf("trial %d subject %q hop %d: missing handle", trial, e.Subject, j)
					continue
				}
				if !hasHandle(o, hop.Handle) || !hasHandle(obs[e.Path[j+1].Obs], hop.Handle) {
					t.Errorf("trial %d subject %q hop %d: handle %q not shared by both endpoints", trial, e.Subject, j, hop.Handle)
				}
			}
		}
	}
}

func hasHandle(o ledger.Observation, h string) bool {
	for _, x := range o.Handles {
		if x == h {
			return true
		}
	}
	return false
}

// TestLinkEvidenceNoCollusion is the negative case: a coalition that
// holds only one side of the join, or no entities at all, must report
// no links and no paths even though the full observation set links.
func TestLinkEvidenceNoCollusion(t *testing.T) {
	t.Parallel()
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("alice-addr", "alice", "", core.Sensitive)
	cls.RegisterData("alice-query", "alice", "", core.Sensitive)
	lg := ledger.New(cls, nil)
	// Proxy holds the identity, server the data, joined via h-shared —
	// but only when both collude.
	lg.SawIdentity("Proxy", "alice-addr", "h-shared")
	lg.SawData("Server", "alice-query", "h-shared")
	obs := lg.Observations()

	full := adversary.LinkSubjectsEvidence(obs, []string{"Proxy", "Server"})
	if len(full) != 1 || !full[0].Linked || len(full[0].Path) != 2 {
		t.Fatalf("full coalition should link via a 2-hop chain: %+v", full)
	}
	if full[0].Path[0].Handle != "h-shared" {
		t.Errorf("chain handle = %q, want h-shared", full[0].Path[0].Handle)
	}

	for _, coalition := range [][]string{{"Proxy"}, {"Server"}, {}} {
		res := adversary.LinkSubjectsEvidence(obs, coalition)
		for _, r := range res {
			if r.Linked || r.Path != nil {
				t.Errorf("coalition %v: unexpected link %+v", coalition, r)
			}
		}
	}
}

// TestLinkEvidenceSameObservation covers the degenerate chain: one
// coalition member observed identity and data… as two observations
// sharing a handle, and an entity that saw both in a single record
// partition (VPN-style), producing minimal 2-hop chains.
func TestLinkEvidenceSameObservation(t *testing.T) {
	t.Parallel()
	cls := ledger.NewClassifier()
	cls.RegisterIdentity("10.0.0.1", "bob", "", core.Sensitive)
	cls.RegisterData("http://x/secret", "bob", "", core.Sensitive)
	lg := ledger.New(cls, nil)
	lg.SawIdentity("VPN", "10.0.0.1", "sess1")
	lg.SawData("VPN", "http://x/secret", "sess1")
	res := adversary.LinkSubjectsEvidence(lg.Observations(), []string{"VPN"})
	if len(res) != 1 || !res[0].Linked {
		t.Fatalf("VPN alone must link: %+v", res)
	}
	if len(res[0].Path) != 2 {
		t.Errorf("want minimal 2-hop chain, got %v", res[0].Path)
	}
}
