package adversary

import (
	"strings"
	"testing"

	"decoupling/internal/core"
)

// closureSystem builds a declared system with two handle-connected
// partitions, one linkless loner, and a shared secret split across the
// connected pair.
func closureSystem() *core.System {
	return &core.System{
		Name: "closure-test",
		Entities: []core.Entity{
			{Name: "User", User: true, Knows: core.Tuple{core.SensID(), core.SensData()}},
			{Name: "Front", Knows: core.Tuple{core.SensID(), core.NonSensData()}, Links: []string{"conn-a"}},
			{Name: "Middle", Knows: core.Tuple{core.NonSensID(), core.NonSensData()}, Links: []string{"conn-a", "conn-b"}},
			{Name: "Back", Knows: core.Tuple{core.NonSensID(), core.NonSensData()}, Links: []string{"conn-b"}},
			{Name: "Loner", Knows: core.Tuple{core.NonSensID(), core.SensData()}},
		},
		SharedSecrets: []core.SharedSecret{
			{Name: "split-key", Holders: []string{"Front", "Back"}, Yields: core.SensData()},
		},
	}
}

func TestCloseStaticPartitions(t *testing.T) {
	cl, err := CloseStatic(closureSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2 (chain + loner):\n%+v", len(cl.Partitions), cl.Partitions)
	}
	chain := cl.Partitions[0]
	if strings.Join(chain.Entities, "+") != "Back+Front+Middle" {
		t.Errorf("chain members = %v", chain.Entities)
	}
	if strings.Join(chain.Handles, " ") != "conn-a conn-b" {
		t.Errorf("chain handles = %v", chain.Handles)
	}
	// Front(▲,⊙) + Middle(△,⊙) + Back(△,⊙) + reconstructed split-key (●)
	// = (▲, ●): coupled under full collusion.
	if !chain.Coupled || chain.Merged.Symbol() != "(▲, ●)" {
		t.Errorf("chain merged = %s coupled=%v", chain.Merged.Symbol(), chain.Coupled)
	}
	if len(chain.Secrets) != 1 || chain.Secrets[0] != "split-key" {
		t.Errorf("chain secrets = %v", chain.Secrets)
	}

	loner := cl.Partitions[1]
	if len(loner.Entities) != 1 || loner.Entities[0] != "Loner" {
		t.Errorf("loner partition = %v", loner.Entities)
	}
	if loner.Coupled {
		t.Error("(△, ●) alone must not be coupled")
	}
	if len(loner.Secrets) != 0 {
		t.Errorf("loner reconstructs %v", loner.Secrets)
	}
}

// TestCloseStaticSecretNeedsAllHolders pins the threshold semantics: a
// partition holding only some of a secret's shares reconstructs
// nothing.
func TestCloseStaticSecretNeedsAllHolders(t *testing.T) {
	sys := closureSystem()
	// Re-home the second share outside the chain partition.
	sys.SharedSecrets[0].Holders = []string{"Front", "Loner"}
	cl, err := CloseStatic(sys)
	if err != nil {
		t.Fatal(err)
	}
	chain := cl.Partitions[0]
	if len(chain.Secrets) != 0 {
		t.Errorf("partial holder set reconstructed %v", chain.Secrets)
	}
	if chain.Coupled {
		t.Errorf("chain without the secret merged %s and must stay uncoupled", chain.Merged.Symbol())
	}
}

// TestCloseStaticVerdictMatchesAnalyze pins that the closure's verdict
// is exactly core.Analyze on the same system — static and measured
// coalition degrees stay directly comparable.
func TestCloseStaticVerdictMatchesAnalyze(t *testing.T) {
	sys := closureSystem()
	cl, err := CloseStatic(sys)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Analyze(sys)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Verdict.String() != want.String() {
		t.Errorf("closure verdict %q != Analyze %q", cl.Verdict, want)
	}
}

func TestCloseStaticDeterministicOrder(t *testing.T) {
	base, err := CloseStatic(closureSystem())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := CloseStatic(closureSystem())
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Partitions) != len(base.Partitions) {
			t.Fatal("partition count varies")
		}
		for j := range again.Partitions {
			a, b := again.Partitions[j], base.Partitions[j]
			if strings.Join(a.Entities, "+") != strings.Join(b.Entities, "+") ||
				strings.Join(a.Handles, " ") != strings.Join(b.Handles, " ") {
				t.Fatalf("partition order varies: %+v vs %+v", a, b)
			}
		}
	}
}
