package mixnet

import (
	"fmt"
	"testing"
	"time"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/simnet"
)

// buildCascade wires n mixes and a receiver on a fresh network.
func buildCascade(t testing.TB, net simnet.Transport, n, threshold int, timeout time.Duration, padded bool, lg *ledger.Ledger) ([]NodeInfo, []*Mix, *Receiver) {
	t.Helper()
	var route []NodeInfo
	var mixes []*Mix
	for i := 1; i <= n; i++ {
		m, err := NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(fmt.Sprintf("mix%d", i)), threshold, timeout, lg)
		if err != nil {
			t.Fatal(err)
		}
		mixes = append(mixes, m)
		route = append(route, m.Info())
	}
	rcv, err := NewReceiver(net, "Receiver", "receiver", padded, lg)
	if err != nil {
		t.Fatal(err)
	}
	return route, mixes, rcv
}

func TestSingleMessageDelivery(t *testing.T) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 3, 1, 0, false, nil)
	s := &Sender{Addr: "alice"}
	if err := s.Send(net, route, rcv.Info(), []byte("hello bob")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	inbox := rcv.Inbox()
	if len(inbox) != 1 || string(inbox[0].Body) != "hello bob" {
		t.Fatalf("inbox = %+v", inbox)
	}
	if inbox[0].From != "mix3" {
		t.Errorf("message arrived from %q, want mix3", inbox[0].From)
	}
}

func TestPaddedDelivery(t *testing.T) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 2, 1, 0, true, nil)
	s := &Sender{Addr: "alice", PadTo: 512}
	if err := s.Send(net, route, rcv.Info(), []byte("short")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	inbox := rcv.Inbox()
	if len(inbox) != 1 || string(inbox[0].Body) != "short" {
		t.Fatalf("inbox = %+v", inbox)
	}
}

func TestPadOverflow(t *testing.T) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 1, 1, 0, true, nil)
	s := &Sender{Addr: "alice", PadTo: 16}
	if err := s.Send(net, route, rcv.Info(), make([]byte, 100)); err != ErrPadOverflow {
		t.Errorf("err = %v, want ErrPadOverflow", err)
	}
}

func TestBatchingHoldsUntilThreshold(t *testing.T) {
	net := simnet.New(1)
	route, mixes, rcv := buildCascade(t, net, 1, 4, 0, false, nil)
	for i := 0; i < 3; i++ {
		s := &Sender{Addr: simnet.Addr(fmt.Sprintf("sender%d", i))}
		if err := s.Send(net, route, rcv.Info(), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	if len(rcv.Inbox()) != 0 {
		t.Fatalf("messages leaked before batch threshold: %d", len(rcv.Inbox()))
	}
	// Fourth message completes the batch.
	s := &Sender{Addr: "sender3"}
	if err := s.Send(net, route, rcv.Info(), []byte("m3")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(rcv.Inbox()) != 4 {
		t.Fatalf("inbox = %d after full batch", len(rcv.Inbox()))
	}
	if f, _ := mixes[0].Stats(); f != 1 {
		t.Errorf("flushes = %d", f)
	}
}

func TestBatchTimeoutFlushes(t *testing.T) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 1, 100, 2*time.Second, false, nil)
	s := &Sender{Addr: "alice"}
	if err := s.Send(net, route, rcv.Info(), []byte("lonely message")); err != nil {
		t.Fatal(err)
	}
	net.Run() // drains including the timeout event
	if len(rcv.Inbox()) != 1 {
		t.Fatalf("timeout did not flush: inbox = %d", len(rcv.Inbox()))
	}
	if got := rcv.Inbox()[0].Time; got < 2*time.Second {
		t.Errorf("delivered at %v, before the batch timeout", got)
	}
}

func TestTamperedOnionDropped(t *testing.T) {
	net := simnet.New(1)
	route, mixes, rcv := buildCascade(t, net, 2, 1, 0, false, nil)
	onion, err := BuildOnion(route, rcv.Info(), []byte("msg"), 0)
	if err != nil {
		t.Fatal(err)
	}
	onion[40] ^= 1
	net.Send("alice", route[0].Addr, append([]byte{tagOnion}, onion...))
	net.Run()
	if len(rcv.Inbox()) != 0 {
		t.Error("tampered onion delivered")
	}
	if _, d := mixes[0].Stats(); d != 1 {
		t.Errorf("dropped = %d", d)
	}
}

func TestWrongMixCannotDecrypt(t *testing.T) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 2, 1, 0, false, nil)
	// Send the onion to mix2 first instead of mix1: layer sealed for
	// mix1 must not open at mix2.
	onion, err := BuildOnion(route, rcv.Info(), []byte("msg"), 0)
	if err != nil {
		t.Fatal(err)
	}
	net.Send("alice", route[1].Addr, append([]byte{tagOnion}, onion...))
	net.Run()
	if len(rcv.Inbox()) != 0 {
		t.Error("misrouted onion was delivered")
	}
}

// TestDecouplingTable reproduces the paper's §3.1.2 mix-net table with
// N=3 from an instrumented run.
func TestDecouplingTable(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	net := simnet.New(7)
	route, _, rcv := buildCascade(t, net, 3, 4, 0, false, lg)

	for i := 0; i < 8; i++ {
		sender := fmt.Sprintf("sender%d", i)
		msg := fmt.Sprintf("private note %d", i)
		cls.RegisterIdentity(sender, sender, "", core.Sensitive)
		cls.RegisterData(msg, sender, "", core.Sensitive)
		s := &Sender{Addr: simnet.Addr(sender)}
		if err := s.Send(net, route, rcv.Info(), []byte(msg)); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	if len(rcv.Inbox()) != 8 {
		t.Fatalf("inbox = %d", len(rcv.Inbox()))
	}

	expected := core.Mixnet(3)
	// The expected model names the user "Sender"; our senders are
	// multiple distinct users. Map: use the model as template only.
	measured := lg.DeriveSystem(expected)
	if diffs := core.CompareTuples(expected, measured); len(diffs) != 0 {
		t.Errorf("measured table diverges from paper:\n%s", core.RenderComparison(expected, measured))
		for _, d := range diffs {
			t.Log(d)
		}
	}
	v, err := core.Analyze(measured)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoupled {
		t.Errorf("measured system not decoupled: %s", v)
	}
}

// TestPartialCollusionCannotLink / full chain can: the linkage-handle
// structure measured at runtime matches the §4.1 collusion argument.
func TestCollusionStructure(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	net := simnet.New(7)
	route, _, rcv := buildCascade(t, net, 3, 1, 0, false, lg)

	for i := 0; i < 4; i++ {
		sender := fmt.Sprintf("sender%d", i)
		msg := fmt.Sprintf("secret %d", i)
		cls.RegisterIdentity(sender, sender, "", core.Sensitive)
		cls.RegisterData(msg, sender, "", core.Sensitive)
		s := &Sender{Addr: simnet.Addr(sender)}
		if err := s.Send(net, route, rcv.Info(), []byte(msg)); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	obs := lg.Observations()

	// Mix 1 + Receiver: handle chain broken at mixes 2-3.
	res := adversary.LinkSubjects(obs, []string{"Mix 1", "Receiver"})
	if rate := adversary.LinkageRate(res); rate != 0 {
		t.Errorf("mix1+receiver linked %.0f%% without intermediate mixes", rate*100)
	}
	// Full cascade + receiver: complete chain, everything links.
	res = adversary.LinkSubjects(obs, []string{"Mix 1", "Mix 2", "Mix 3", "Receiver"})
	if rate := adversary.LinkageRate(res); rate != 1 {
		t.Errorf("full collusion linked only %.0f%%", rate*100)
	}
}

// TestShuffleDefeatsTimingCorrelation: with batch-and-shuffle the
// rank-order timing attack drops to ~chance; without batching it is
// perfect. This is the E12 mechanism in miniature.
func TestShuffleDefeatsTimingCorrelation(t *testing.T) {
	run := func(threshold int) float64 {
		net := simnet.New(99)
		route, _, rcv := buildCascade(t, net, 1, threshold, 0, false, nil)
		var entries []adversary.Event
		for i := 0; i < 16; i++ {
			sender := fmt.Sprintf("sender%d", i)
			s := &Sender{Addr: simnet.Addr(sender)}
			// Stagger the entries so arrival order is the sender order.
			net.After(time.Duration(i)*time.Millisecond, func() {
				s.Send(net, route, rcv.Info(), []byte(sender))
			})
			entries = append(entries, adversary.Event{Time: time.Duration(i) * time.Millisecond, Subject: sender})
		}
		net.Run()
		var exits []adversary.Event
		for _, m := range rcv.Inbox() {
			exits = append(exits, adversary.Event{Time: m.Time, Subject: string(m.Body)})
		}
		correct, total := adversary.TimingCorrelate(entries, exits)
		return float64(correct) / float64(total)
	}
	if acc := run(1); acc != 1 {
		t.Errorf("no batching: timing accuracy = %.2f, want 1.0", acc)
	}
	if acc := run(16); acc > 0.5 {
		t.Errorf("batch of 16: timing accuracy = %.2f, want <= 0.5", acc)
	}
}

func TestBuildOnionEmptyRoute(t *testing.T) {
	if _, err := BuildOnion(nil, NodeInfo{}, []byte("x"), 0); err == nil {
		t.Error("empty route accepted")
	}
}

func BenchmarkBuildOnion3Hop(b *testing.B) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(b, net, 3, 1, 0, false, nil)
	msg := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildOnion(route, rcv.Info(), msg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEnd3Hop(b *testing.B) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(b, net, 3, 1, 0, false, nil)
	s := &Sender{Addr: "bench"}
	msg := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(net, route, rcv.Info(), msg); err != nil {
			b.Fatal(err)
		}
		net.Run()
	}
}

// TestFreeRouteDelivery: messages over per-message random routes all
// deliver, and the entry-mix load spreads across the pool (no fixed
// cascade head).
func TestFreeRouteDelivery(t *testing.T) {
	net := simnet.New(41)
	var pool []NodeInfo
	for i := 1; i <= 6; i++ {
		m, err := NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(fmt.Sprintf("mix%d", i)), 1, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, m.Info())
	}
	rcv, err := NewReceiver(net, "Receiver", "receiver", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[simnet.Addr]int{}
	const msgs = 60
	for i := 0; i < msgs; i++ {
		route, err := RandomRoute(net, pool, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Distinct mixes on every route.
		seen := map[simnet.Addr]bool{}
		for _, n := range route {
			if seen[n.Addr] {
				t.Fatalf("route reuses mix %s", n.Addr)
			}
			seen[n.Addr] = true
		}
		entries[route[0].Addr]++
		s := &Sender{Addr: simnet.Addr(fmt.Sprintf("s%02d", i))}
		if err := s.Send(net, route, rcv.Info(), []byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	if len(rcv.Inbox()) != msgs {
		t.Fatalf("delivered %d of %d over free routes", len(rcv.Inbox()), msgs)
	}
	if len(entries) < 4 {
		t.Errorf("entry load concentrated on %d of 6 mixes: %v", len(entries), entries)
	}
}

func TestRandomRouteErrors(t *testing.T) {
	net := simnet.New(1)
	pool := make([]NodeInfo, 2)
	if _, err := RandomRoute(net, pool, 3); err == nil {
		t.Error("route longer than pool accepted")
	}
	if _, err := RandomRoute(net, pool, 0); err == nil {
		t.Error("zero-hop route accepted")
	}
}

// TestStatisticalDisclosureOverCapture: the long-term intersection
// attack driven by the global observer's real capture. Alice messages
// bob in half the rounds amid noise traffic; grouping the capture into
// batch rounds and scoring exposes bob as her partner — batching hides
// per-message correspondence, not long-term participation.
func TestStatisticalDisclosureOverCapture(t *testing.T) {
	net := simnet.New(61)
	m, err := NewMix(net, "Mix 1", "mix1", 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	route := []NodeInfo{m.Info()}
	receivers := map[simnet.Addr]*Receiver{}
	for i := 0; i < 6; i++ {
		addr := simnet.Addr(fmt.Sprintf("recv%d", i))
		r, err := NewReceiver(net, string(addr), addr, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		receivers[addr] = r
	}

	const rounds = 150
	prevCapture := 0
	var obsRounds []adversary.Round
	for round := 0; round < rounds; round++ {
		// One batch of 4: alice (every other round) + noise senders.
		batch := 0
		if round%2 == 0 {
			s := &Sender{Addr: "alice"}
			if err := s.Send(net, route, receivers["recv0"].Info(), []byte("to bob")); err != nil {
				t.Fatal(err)
			}
			batch++
		}
		for batch < 4 {
			who := simnet.Addr(fmt.Sprintf("noise%d", net.Rand(12)))
			dst := simnet.Addr(fmt.Sprintf("recv%d", 1+net.Rand(5)))
			s := &Sender{Addr: who}
			if err := s.Send(net, route, receivers[dst].Info(), []byte("noise")); err != nil {
				t.Fatal(err)
			}
			batch++
		}
		net.Run()
		// Derive this round's observation from the capture delta.
		var r adversary.Round
		for _, rec := range net.Capture()[prevCapture:] {
			switch {
			case rec.Dst == "mix1":
				r.Senders = append(r.Senders, string(rec.Src))
			case rec.Src == "mix1":
				r.Receivers = append(r.Receivers, string(rec.Dst))
			}
		}
		prevCapture = len(net.Capture())
		obsRounds = append(obsRounds, r)
	}

	scored := adversary.StatisticalDisclosure(obsRounds, "alice")
	if len(scored) == 0 || scored[0].Receiver != "recv0" {
		t.Fatalf("top suspect = %+v, want recv0 (bob)", scored[:min(3, len(scored))])
	}
}
