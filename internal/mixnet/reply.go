package mixnet

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/simnet"
)

// This file implements Chaum's untraceable return addresses (the
// "return addresses" of the 1981 paper the HotNets paper builds on):
// the original sender pre-builds a reply block — a layered onion whose
// layers carry per-hop symmetric keys and routing — and hands it to the
// receiver along with a message. To reply, the receiver attaches its
// response to the block and injects it at the block's first mix. Each
// mix peels one block layer, learns only the next hop, and encrypts the
// response under the embedded key; the final mix delivers to the
// sender, who holds all per-hop keys and strips every layer.
//
// The receiver thus answers without ever learning who it is talking
// to, and no mix sees both endpoints — the same decoupling as the
// forward path, in reverse.

// Per-hop reply encryption is AES-CTR with a zero IV; each key is used
// for exactly one reply, and CTR keystreams commute under XOR so the
// sender can strip all layers in any order.
func replyXOR(key, data []byte) {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(fmt.Sprintf("mixnet: reply key: %v", err))
	}
	var iv [16]byte
	cipher.NewCTR(block, iv[:]).XORKeyStream(data, data)
}

// ErrMalformedReply is returned for undecodable reply traffic.
var ErrMalformedReply = errors.New("mixnet: malformed reply message")

// ReplyAddress is an anonymous return address: inject the block at
// FirstHop and the network routes the attached response back to its
// builder.
type ReplyAddress struct {
	FirstHop simnet.Addr
	Block    []byte
}

// ReplyKeys is the builder's secret: the per-hop keys needed to decrypt
// a returned reply.
type ReplyKeys struct {
	keys [][]byte
}

// Decrypt strips all per-hop encryption layers from a delivered reply.
func (rk *ReplyKeys) Decrypt(data []byte) []byte {
	out := append([]byte(nil), data...)
	for _, k := range rk.keys {
		replyXOR(k, out)
	}
	return out
}

// Block layer plaintext:
//
//	[key 16][type 1][addrlen 2][addr][inner block...]
//
// type layerRelay: addr is the next mix; type layerDeliver: addr is the
// builder's own address and inner is empty.

// BuildReplyBlock constructs an anonymous return address routing
// replies through route (first hop first) back to backAddr. It returns
// the address to hand to the correspondent and the keys to keep.
func BuildReplyBlock(route []NodeInfo, backAddr simnet.Addr) (*ReplyAddress, *ReplyKeys, error) {
	if len(route) == 0 {
		return nil, nil, errors.New("mixnet: reply block needs at least one mix")
	}
	keys := make([][]byte, len(route))
	for i := range keys {
		keys[i] = make([]byte, 16)
		if _, err := rand.Read(keys[i]); err != nil {
			return nil, nil, fmt.Errorf("mixnet: reply key: %w", err)
		}
	}
	// Innermost layer: the last mix delivers to the builder.
	var inner []byte
	for i := len(route) - 1; i >= 0; i-- {
		typ := layerRelay
		var addr simnet.Addr
		if i == len(route)-1 {
			typ = layerDeliver
			addr = backAddr
		} else {
			addr = route[i+1].Addr
		}
		plain := make([]byte, 0, 16+3+len(addr)+len(inner))
		plain = append(plain, keys[i]...)
		plain = append(plain, typ)
		plain = binary.BigEndian.AppendUint16(plain, uint16(len(addr)))
		plain = append(plain, addr...)
		plain = append(plain, inner...)
		wire, err := seal(route[i].PubKey, plain)
		if err != nil {
			return nil, nil, err
		}
		inner = wire
	}
	return &ReplyAddress{FirstHop: route[0].Addr, Block: inner}, &ReplyKeys{keys: keys}, nil
}

// SendReply attaches response to the reply address and injects it into
// the mix network on behalf of from (typically a Receiver's address).
func SendReply(net simnet.Transport, from simnet.Addr, ra *ReplyAddress, response []byte) error {
	wire := make([]byte, 0, 1+4+len(ra.Block)+len(response))
	wire = append(wire, tagReply)
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(ra.Block)))
	wire = append(wire, ra.Block...)
	wire = append(wire, response...)
	return net.Send(from, ra.FirstHop, wire)
}

// handleReply processes reply-block traffic at a mix: peel one block
// layer, encrypt the response under the embedded key, forward (or
// deliver to the builder). Reply traffic joins the same batch queue as
// forward onions, so it enjoys the same batching defense.
func (m *Mix) handleReply(net simnet.Transport, msg simnet.Message) {
	hop := m.wire.Hop(m.Name, "mixnet.reply", msg.Trace, string(msg.Src), "")
	defer hop.End()
	payload := msg.Payload[1:]
	if len(payload) < 4 {
		m.dropped++
		return
	}
	blockLen := int(binary.BigEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < blockLen {
		m.dropped++
		return
	}
	block, response := payload[:blockLen], payload[blockLen:]

	plain, err := open(m.kp, block)
	if err != nil {
		m.dropped++
		return
	}
	if len(plain) < 16+3 {
		m.dropped++
		return
	}
	key := plain[:16]
	typ := plain[16]
	n := int(binary.BigEndian.Uint16(plain[17:19]))
	if len(plain) < 19+n {
		m.dropped++
		return
	}
	addr := simnet.Addr(plain[19 : 19+n])
	innerBlock := plain[19+n:]

	enc := append([]byte(nil), response...)
	replyXOR(key, enc)

	var out outbound
	switch typ {
	case layerRelay:
		wire := make([]byte, 0, 4+len(innerBlock)+len(enc))
		wire = binary.BigEndian.AppendUint32(wire, uint32(len(innerBlock)))
		wire = append(wire, innerBlock...)
		wire = append(wire, enc...)
		out = outbound{next: addr, wire: wire, tag: tagReply}
	case layerDeliver:
		out = outbound{next: addr, wire: enc, tag: tagReplyDeliver}
	default:
		m.dropped++
		return
	}
	if m.lg != nil {
		// Handles are the exact bytes shared with each neighbor.
		inHandle := ledger.Hash(msg.Payload[1:])
		outHandle := ledger.Hash(out.wire)
		m.lg.SawBatch(m.Name, []ledger.Entry{
			{Kind: core.Identity, Value: string(msg.Src), Handles: []string{inHandle, outHandle}},
			{Kind: core.Data, Value: "reply:" + outHandle, Handles: []string{inHandle, outHandle}},
		})
		hop.Observe(core.Identity, string(msg.Src))
		hop.Observe(core.Data, "reply:"+outHandle)
	}
	out.trace = hop.Forward()
	m.queue = append(m.queue, out)
	if m.Threshold > 1 && len(m.queue) < m.Threshold {
		if m.Timeout > 0 && !m.pendingFlush {
			m.pendingFlush = true
			net.After(m.Timeout, func() {
				m.pendingFlush = false
				m.flush(net)
			})
		}
		return
	}
	m.flush(net)
}

// DeliveredReply is a reply that reached the original sender.
type DeliveredReply struct {
	From simnet.Addr // last-hop mix
	Body []byte      // still wearing all per-hop layers; Decrypt with ReplyKeys
	Time time.Duration
}

// ReplyCollector is the original sender's node: it collects encrypted
// replies for later decryption with the matching ReplyKeys.
type ReplyCollector struct {
	Addr    simnet.Addr
	inbox   []DeliveredReply
	dropped int
}

// NewReplyCollector registers a collector node at addr.
func NewReplyCollector(net simnet.Transport, addr simnet.Addr) *ReplyCollector {
	c := &ReplyCollector{Addr: addr}
	net.Register(addr, c.handle)
	return c
}

func (c *ReplyCollector) handle(net simnet.Transport, msg simnet.Message) {
	if len(msg.Payload) < 1 || msg.Payload[0] != tagReplyDeliver {
		c.dropped++
		return
	}
	c.inbox = append(c.inbox, DeliveredReply{
		From: msg.Src,
		Body: append([]byte(nil), msg.Payload[1:]...),
		Time: net.Now(),
	})
}

// Inbox returns replies received so far.
func (c *ReplyCollector) Inbox() []DeliveredReply {
	return append([]DeliveredReply(nil), c.inbox...)
}

// Dropped reports discarded deliveries.
func (c *ReplyCollector) Dropped() int { return c.dropped }
