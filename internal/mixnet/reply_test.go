package mixnet

import (
	"fmt"
	"strings"
	"testing"

	"decoupling/internal/adversary"
	"decoupling/internal/core"
	"decoupling/internal/ledger"
	"decoupling/internal/simnet"
)

func TestReplyRoundTrip(t *testing.T) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 3, 1, 0, false, nil)
	collector := NewReplyCollector(net, "alice")

	// Alice builds a reply block routed back through the same mixes and
	// includes it in her (out-of-band, for this test) message to Bob.
	ra, keys, err := BuildReplyBlock(route, collector.Addr)
	if err != nil {
		t.Fatal(err)
	}
	// Bob replies without ever learning who alice is.
	if err := SendReply(net, rcv.Addr, ra, []byte("yes, meet at noon")); err != nil {
		t.Fatal(err)
	}
	net.Run()

	inbox := collector.Inbox()
	if len(inbox) != 1 {
		t.Fatalf("collector inbox = %d", len(inbox))
	}
	if inbox[0].From != "mix3" {
		t.Errorf("reply arrived from %q, want the last mix", inbox[0].From)
	}
	// The delivered body is layered; raw bytes must not be the message.
	if string(inbox[0].Body) == "yes, meet at noon" {
		t.Fatal("reply arrived unencrypted")
	}
	if got := string(keys.Decrypt(inbox[0].Body)); got != "yes, meet at noon" {
		t.Errorf("decrypted reply = %q", got)
	}
}

func TestReplySingleMix(t *testing.T) {
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 1, 1, 0, false, nil)
	collector := NewReplyCollector(net, "alice")
	ra, keys, err := BuildReplyBlock(route, collector.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := SendReply(net, rcv.Addr, ra, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if got := collector.Inbox(); len(got) != 1 || string(keys.Decrypt(got[0].Body)) != "ack" {
		t.Fatalf("inbox = %+v", got)
	}
}

func TestReplyBlockSingleUse(t *testing.T) {
	// Two replies on independently built blocks decrypt independently;
	// keys from one block must not decrypt the other's reply.
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 2, 1, 0, false, nil)
	c1 := NewReplyCollector(net, "alice1")
	c2 := NewReplyCollector(net, "alice2")
	ra1, k1, _ := BuildReplyBlock(route, c1.Addr)
	ra2, k2, _ := BuildReplyBlock(route, c2.Addr)
	SendReply(net, rcv.Addr, ra1, []byte("first"))
	SendReply(net, rcv.Addr, ra2, []byte("second"))
	net.Run()
	if string(k1.Decrypt(c1.Inbox()[0].Body)) != "first" {
		t.Error("block 1 reply corrupted")
	}
	if string(k2.Decrypt(c2.Inbox()[0].Body)) != "second" {
		t.Error("block 2 reply corrupted")
	}
	if string(k1.Decrypt(c2.Inbox()[0].Body)) == "second" {
		t.Error("keys from block 1 decrypted block 2's reply")
	}
}

func TestReplyBatchesWithForwardTraffic(t *testing.T) {
	// A reply queued at a mix with threshold 2 waits for another
	// message — reply traffic enjoys the same batching defense.
	net := simnet.New(1)
	route, _, rcv := buildCascade(t, net, 1, 2, 0, false, nil)
	collector := NewReplyCollector(net, "alice")
	ra, _, err := BuildReplyBlock(route, collector.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := SendReply(net, rcv.Addr, ra, []byte("held")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(collector.Inbox()) != 0 {
		t.Fatal("reply flushed before batch threshold")
	}
	// A forward message completes the batch and both flush together.
	s := &Sender{Addr: "carol"}
	if err := s.Send(net, route, rcv.Info(), []byte("filler")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(collector.Inbox()) != 1 || len(rcv.Inbox()) != 1 {
		t.Errorf("after batch: replies=%d forwards=%d", len(collector.Inbox()), len(rcv.Inbox()))
	}
}

func TestMalformedReplyDropped(t *testing.T) {
	net := simnet.New(1)
	route, mixes, _ := buildCascade(t, net, 1, 1, 0, false, nil)
	net.Send("evil", route[0].Addr, []byte{tagReply, 0, 0})              // truncated length
	net.Send("evil", route[0].Addr, []byte{tagReply, 0, 0, 0, 99, 1, 2}) // length beyond payload
	garbage := append([]byte{tagReply, 0, 0, 0, 60}, make([]byte, 80)...)
	net.Send("evil", route[0].Addr, garbage) // undecryptable block
	net.Run()
	if _, d := mixes[0].Stats(); d != 3 {
		t.Errorf("dropped = %d, want 3", d)
	}
}

func TestBuildReplyBlockEmptyRoute(t *testing.T) {
	if _, _, err := BuildReplyBlock(nil, "alice"); err == nil {
		t.Error("empty route accepted")
	}
}

// TestReplyPathDecoupling: the receiver (now acting as a responder)
// never observes the sender's address, and no single mix links the
// responder to the sender. The reply path has the mirror-image
// knowledge structure of the forward path.
func TestReplyPathDecoupling(t *testing.T) {
	cls := ledger.NewClassifier()
	lg := ledger.New(cls, nil)
	net := simnet.New(5)
	route, _, rcv := buildCascade(t, net, 3, 1, 0, false, lg)
	collector := NewReplyCollector(net, "alice-home")
	cls.RegisterIdentity("alice-home", "alice", "", core.Sensitive)
	cls.RegisterIdentity(string(rcv.Addr), "bob", "", core.Sensitive)

	ra, _, err := BuildReplyBlock(route, collector.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := SendReply(net, rcv.Addr, ra, []byte("reply body")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(collector.Inbox()) != 1 {
		t.Fatal("reply not delivered")
	}

	// Mix 1 (receiver side) saw bob's address; mix 3 (sender side)
	// delivered to alice — but no single mix saw both.
	for _, name := range []string{"Mix 1", "Mix 2", "Mix 3"} {
		sawBob, sawAlice := false, false
		for _, o := range lg.ByObserver(name) {
			if strings.Contains(o.Value, string(rcv.Addr)) {
				sawBob = true
			}
			if strings.Contains(o.Value, "alice-home") {
				sawAlice = true
			}
		}
		if sawBob && sawAlice {
			t.Errorf("%s saw both endpoints of the reply path", name)
		}
	}

	// The handle chain along the reply path exists (full collusion
	// links) but any single mix does not.
	obs := lg.Observations()
	if rate := adversary.LinkageRate(adversary.LinkSubjects(obs, []string{"Mix 1"})); rate != 0 {
		t.Errorf("single mix linked %.0f%%", rate*100)
	}
}

func BenchmarkReplyRoundTrip(b *testing.B) {
	net := simnet.New(1)
	var route []NodeInfo
	for i := 1; i <= 3; i++ {
		m, err := NewMix(net, fmt.Sprintf("Mix %d", i), simnet.Addr(fmt.Sprintf("mix%d", i)), 1, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		route = append(route, m.Info())
	}
	collector := NewReplyCollector(net, "alice")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra, keys, err := BuildReplyBlock(route, collector.Addr)
		if err != nil {
			b.Fatal(err)
		}
		if err := SendReply(net, "bob", ra, []byte("bench reply")); err != nil {
			b.Fatal(err)
		}
		net.Run()
		_ = keys
	}
}
