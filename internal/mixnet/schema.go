package mixnet

import (
	"fmt"

	"decoupling/internal/core"
	"decoupling/internal/schema"
)

// StaticSchema declares the §3.1.2 three-mix cascade: each hop message
// carries the previous hop's address and an onion whose outermost layer
// only the next mix can open. A mix's declared read of its own layer
// yields exactly one next-hop address — routing metadata — so every
// tuple past Mix 1 is (△, ⊙) by derivation, not by trust.
func StaticSchema() *schema.Scenario {
	hop := func(i int) string { return fmt.Sprintf("mix_hop%d", i) }
	layer := func(i int) string { return fmt.Sprintf("mix_layer%d", i) }
	mix := func(i int) string { return fmt.Sprintf("Mix %d", i) }
	sc := &schema.Scenario{
		Name:    "mixnet",
		System:  "Mix-net (3 mixes)",
		Section: "3.1.2",
		Doc:     "Chaum mix cascade: three mixes peel nested encryption layers; only Mix 1 sees the sender's address and only the receiver sees the message.",
		Axes:    []schema.Axis{{Kind: core.Identity}, {Kind: core.Data}},
		Messages: []schema.Message{
			{
				Name: hop(1),
				Doc:  "the sender's submission to the first mix",
				Fields: []schema.Field{
					{Name: "sender_addr", Label: schema.Identity},
					{Name: "onion", Label: schema.Opaque, Encapsulates: layer(1), Openers: []string{mix(1)}},
				},
			},
			{
				Name: layer(1),
				Fields: []schema.Field{
					{Name: "next_hop", Label: schema.Routing},
					{Name: "inner", Label: schema.Opaque, Encapsulates: layer(2), Openers: []string{mix(2)}},
				},
			},
			{
				Name: hop(2),
				Fields: []schema.Field{
					{Name: "mix_addr", Label: schema.Routing},
					{Name: "onion", Label: schema.Opaque, Encapsulates: layer(2), Openers: []string{mix(2)}},
				},
			},
			{
				Name: layer(2),
				Fields: []schema.Field{
					{Name: "next_hop", Label: schema.Routing},
					{Name: "inner", Label: schema.Opaque, Encapsulates: layer(3), Openers: []string{mix(3)}},
				},
			},
			{
				Name: hop(3),
				Fields: []schema.Field{
					{Name: "mix_addr", Label: schema.Routing},
					{Name: "onion", Label: schema.Opaque, Encapsulates: layer(3), Openers: []string{mix(3)}},
				},
			},
			{
				Name: layer(3),
				Fields: []schema.Field{
					{Name: "next_hop", Label: schema.Routing},
					{Name: "inner", Label: schema.Opaque, Encapsulates: "mix_delivery", Openers: []string{"Receiver"}},
				},
			},
			{
				Name: hop(4),
				Doc:  "the last mix's delivery to the receiver",
				Fields: []schema.Field{
					{Name: "mix_addr", Label: schema.Routing},
					{Name: "onion", Label: schema.Opaque, Encapsulates: "mix_delivery", Openers: []string{"Receiver"}},
				},
			},
			{
				Name: "mix_delivery",
				Doc:  "the innermost plaintext, visible only to the receiver",
				Fields: []schema.Field{
					{Name: "message", Label: schema.Content},
				},
			},
		},
		Roles: []schema.Role{
			{
				Name: "Sender", User: true,
				Knows: core.Tuple{core.SensID(), core.SensData()},
				Sends: []schema.Use{{Message: hop(1), Fields: []string{"sender_addr"}}},
			},
			{
				Name: mix(1),
				Receives: []schema.Use{
					{Message: hop(1), Fields: []string{"sender_addr", "onion"}},
					{Message: layer(1), Fields: []string{"next_hop"}},
				},
				Sends: []schema.Use{{Message: hop(2), Fields: []string{"mix_addr"}}},
			},
			{
				Name: mix(2),
				Receives: []schema.Use{
					{Message: hop(2), Fields: []string{"mix_addr", "onion"}},
					{Message: layer(2), Fields: []string{"next_hop"}},
				},
				Sends: []schema.Use{{Message: hop(3), Fields: []string{"mix_addr"}}},
			},
			{
				Name: mix(3),
				Receives: []schema.Use{
					{Message: hop(3), Fields: []string{"mix_addr", "onion"}},
					{Message: layer(3), Fields: []string{"next_hop"}},
				},
				Sends: []schema.Use{{Message: hop(4), Fields: []string{"mix_addr"}}},
			},
			{
				Name: "Receiver",
				Receives: []schema.Use{
					{Message: hop(4), Fields: []string{"mix_addr", "onion"}},
					{Message: "mix_delivery", Fields: []string{"message"}},
				},
			},
		},
		Flows: []schema.Flow{
			{From: "Sender", To: mix(1), Message: hop(1), Handle: "hop1"},
			{From: mix(1), To: mix(2), Message: hop(2), Handle: "hop2"},
			{From: mix(2), To: mix(3), Message: hop(3), Handle: "hop3"},
			{From: mix(3), To: "Receiver", Message: hop(4), Handle: "hop4"},
		},
	}
	return sc
}
