// Package mixnet implements Chaum's mix network (the paper's §3.1.2,
// Figure 1): senders wrap messages in layered public-key encryption;
// each mix strips one layer, collects messages into a batch, shuffles,
// and forwards — decoupling who is sending from what is being received.
//
// The implementation runs over the deterministic simulator in
// internal/simnet. Each layer is an HPKE sealed box, so the bytes on
// every hop are cryptographically unrelated to the bytes on the next:
// the linkage handles recorded in the ledger (digests of wire bytes)
// therefore chain only between adjacent hops, which is precisely the
// structure the paper's collusion argument relies on.
//
// Two Chaum defenses are modeled because §4.3 quantifies their cost:
//
//   - batch-and-shuffle forwarding (threshold + timeout) against timing
//     correlation, and
//   - fixed-size message padding against size correlation.
package mixnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"decoupling/internal/core"
	"decoupling/internal/dcrypto/hpke"
	"decoupling/internal/ledger"
	"decoupling/internal/resilience"
	"decoupling/internal/simnet"
	"decoupling/internal/telemetry"
	"decoupling/internal/telemetry/wiretrace"
	"decoupling/internal/transport"
)

// Wire layer types.
const (
	layerRelay   byte = 0
	layerDeliver byte = 1
)

// Wire tags: the first byte of every simnet payload distinguishes
// forward onions from reply-block traffic (Chaum's untraceable return
// addresses) and final reply deliveries.
const (
	tagOnion        byte = 0x4F // 'O'
	tagReply        byte = 0x52 // 'R'
	tagReplyDeliver byte = 0x44 // 'D'
)

var (
	// ErrMalformedLayer is returned when a decrypted layer cannot be
	// parsed.
	ErrMalformedLayer = errors.New("mixnet: malformed onion layer")
	// ErrPadOverflow is returned when a message exceeds the pad size.
	ErrPadOverflow = errors.New("mixnet: message longer than pad size")
)

const hpkeInfo = "decoupling mixnet layer"

// NodeInfo is the public routing descriptor of a mix or receiver.
type NodeInfo struct {
	Addr   simnet.Addr
	PubKey []byte
}

// BuildOnion wraps message for delivery to the receiver through the
// given route of mixes (first hop first). If padTo > 0 the innermost
// plaintext is padded to exactly padTo bytes so all messages entering
// the network are size-indistinguishable.
//
// Layer format (plaintext of each sealed box):
//
//	[type:1][addrlen:2][next addr][inner bytes...]
//
// where type==layerDeliver marks the receiver's own layer.
func BuildOnion(route []NodeInfo, receiver NodeInfo, message []byte, padTo int) ([]byte, error) {
	if len(route) == 0 {
		return nil, errors.New("mixnet: empty route")
	}
	inner := message
	if padTo > 0 {
		if len(message)+4 > padTo {
			return nil, ErrPadOverflow
		}
		padded := make([]byte, padTo)
		binary.BigEndian.PutUint32(padded, uint32(len(message)))
		copy(padded[4:], message)
		inner = padded
	}

	// Innermost: sealed to the receiver.
	plain := make([]byte, 0, 3+len(receiver.Addr)+len(inner))
	plain = append(plain, layerDeliver)
	plain = binary.BigEndian.AppendUint16(plain, uint16(len(receiver.Addr)))
	plain = append(plain, receiver.Addr...)
	plain = append(plain, inner...)
	wire, err := seal(receiver.PubKey, plain)
	if err != nil {
		return nil, err
	}

	// Wrap outward: route[len-1] ... route[0]. Each layer names the
	// *next* hop the decrypting mix must forward to.
	next := receiver.Addr
	for i := len(route) - 1; i >= 0; i-- {
		plain = make([]byte, 0, 3+len(next)+len(wire))
		plain = append(plain, layerRelay)
		plain = binary.BigEndian.AppendUint16(plain, uint16(len(next)))
		plain = append(plain, next...)
		plain = append(plain, wire...)
		wire, err = seal(route[i].PubKey, plain)
		if err != nil {
			return nil, err
		}
		next = route[i].Addr
	}
	return wire, nil
}

func seal(pub, plain []byte) ([]byte, error) {
	enc, ct, err := hpke.Seal(pub, []byte(hpkeInfo), nil, plain)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(enc)+len(ct))
	out = append(out, enc...)
	return append(out, ct...), nil
}

func open(kp *hpke.KeyPair, wire []byte) ([]byte, error) {
	if len(wire) < hpke.NEnc+16 {
		return nil, ErrMalformedLayer
	}
	return hpke.Open(wire[:hpke.NEnc], kp, []byte(hpkeInfo), nil, wire[hpke.NEnc:])
}

func parseLayer(plain []byte) (typ byte, next simnet.Addr, inner []byte, err error) {
	if len(plain) < 3 {
		return 0, "", nil, ErrMalformedLayer
	}
	typ = plain[0]
	n := int(binary.BigEndian.Uint16(plain[1:3]))
	if len(plain) < 3+n {
		return 0, "", nil, ErrMalformedLayer
	}
	return typ, simnet.Addr(plain[3 : 3+n]), plain[3+n:], nil
}

// Mix is one relay node. It batches incoming messages and flushes them
// in shuffled order when the batch reaches Threshold messages or
// Timeout elapses since the first queued message, whichever is first.
type Mix struct {
	Name string // ledger entity name, e.g. "Mix 1"
	Addr simnet.Addr

	// Threshold is the batch size that triggers a flush. 1 disables
	// batching (the ablation baseline: a plain FIFO relay).
	Threshold int
	// Timeout bounds queueing delay; <= 0 means wait for a full batch.
	Timeout time.Duration

	kp   *hpke.KeyPair
	lg   *ledger.Ledger
	tel  *telemetry.Telemetry
	wire *wiretrace.Plane

	queue        []outbound
	pendingFlush bool // a timeout flush is scheduled
	flushes      int
	dropped      int
}

type outbound struct {
	next simnet.Addr
	wire []byte
	tag  byte
	// trace is the outbound wire-trace context captured when the item
	// was queued: under rotation it shares no trace ID with the inbound
	// context, and the linkage between the two lives only in this mix's
	// span store.
	trace wiretrace.Context
}

// NewMix creates a mix and registers it on the network.
func NewMix(net simnet.Transport, name string, addr simnet.Addr, threshold int, timeout time.Duration, lg *ledger.Ledger) (*Mix, error) {
	kp, err := hpke.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("mixnet: mix key: %w", err)
	}
	m := &Mix{Name: name, Addr: addr, Threshold: threshold, Timeout: timeout, kp: kp, lg: lg}
	net.Register(addr, m.handle)
	return m, nil
}

// Info returns the mix's routing descriptor.
func (m *Mix) Info() NodeInfo { return NodeInfo{Addr: m.Addr, PubKey: m.kp.PublicKey()} }

// Stats reports flush and drop counts.
func (m *Mix) Stats() (flushes, dropped int) { return m.flushes, m.dropped }

// Instrument attaches a telemetry sink: layer-strips and batch flushes
// become spans (nested under the simulator's delivery span for the
// triggering message) and flush sizes feed a histogram.
func (m *Mix) Instrument(tel *telemetry.Telemetry) { m.tel = tel }

// InstrumentWire attaches a wire-trace plane: each handled message
// opens a span at this mix's vantage, mirrors the mix's ledger
// observations, and rotates the trace ID before forwarding — the mix
// is a decoupling boundary, so its tracing must re-key like its
// cryptography does. Nil-safe.
func (m *Mix) InstrumentWire(p *wiretrace.Plane) { m.wire = p }

func (m *Mix) handle(net simnet.Transport, msg simnet.Message) {
	if len(msg.Payload) < 1 {
		m.dropped++
		return
	}
	switch msg.Payload[0] {
	case tagOnion:
		m.handleOnion(net, msg)
	case tagReply:
		m.handleReply(net, msg)
	default:
		m.dropped++
	}
}

func (m *Mix) handleOnion(net simnet.Transport, msg simnet.Message) {
	sp := m.tel.Start("mixnet.mix.in", telemetry.A("mix", m.Name))
	defer sp.End()
	hop := m.wire.Hop(m.Name, "mixnet.hop", msg.Trace, string(msg.Src), "")
	defer hop.End()
	inHandle := ledger.Hash(msg.Payload[1:])
	plain, err := open(m.kp, msg.Payload[1:])
	if err != nil {
		m.dropped++
		return
	}
	typ, next, inner, err := parseLayer(plain)
	if err != nil || typ != layerRelay {
		m.dropped++
		return
	}
	if m.lg != nil {
		// The mix sees the previous hop's address and the re-encrypted
		// inner bytes. Its two handles are the digests of the wire bytes
		// it shared with its neighbors. One layer-strip, one batch.
		outHandle := ledger.Hash(inner)
		m.lg.SawBatch(m.Name, []ledger.Entry{
			{Kind: core.Identity, Value: string(msg.Src), Handles: []string{inHandle, outHandle}},
			{Kind: core.Data, Value: "onion:" + outHandle, Handles: []string{inHandle, outHandle}},
		})
		// Mirror the same observations into the trace plane: the span
		// store must know exactly what the ledger knows, so the
		// trace-plane audit can hold the two to equality.
		hop.Observe(core.Identity, string(msg.Src))
		hop.Observe(core.Data, "onion:"+outHandle)
	}
	m.queue = append(m.queue, outbound{next: next, wire: inner, tag: tagOnion, trace: hop.Forward()})
	if m.Threshold > 1 && len(m.queue) < m.Threshold {
		if m.Timeout > 0 && !m.pendingFlush {
			m.pendingFlush = true
			net.After(m.Timeout, func() {
				m.pendingFlush = false
				m.flush(net)
			})
		}
		return
	}
	m.flush(net)
}

// flush shuffles the queue (Fisher-Yates over the network's seeded RNG)
// and forwards everything.
func (m *Mix) flush(net simnet.Transport) {
	if len(m.queue) == 0 {
		return
	}
	q := m.queue
	m.queue = nil
	sp := m.tel.Start("mixnet.mix.flush",
		telemetry.A("mix", m.Name), telemetry.A("batch", telemetry.Itoa(len(q))))
	defer sp.End()
	m.tel.Observe(telemetry.MetricMixBatchSize, "Messages per mix batch flush.",
		telemetry.BatchBuckets, float64(len(q)), telemetry.A("mix", m.Name))
	for i := len(q) - 1; i > 0; i-- {
		j := net.Rand(i + 1)
		q[i], q[j] = q[j], q[i]
	}
	for _, o := range q {
		out := append([]byte{o.tag}, o.wire...)
		if err := transport.SendWithContext(net, m.Addr, o.next, out, o.trace); err != nil {
			m.dropped++
		}
	}
	m.flushes++
}

// Received is a message delivered to a receiver.
type Received struct {
	From simnet.Addr // last-hop mix address
	Body []byte
	Time time.Duration
}

// Receiver is a terminal node that opens the innermost layer.
type Receiver struct {
	Name string
	Addr simnet.Addr
	kp   *hpke.KeyPair
	lg   *ledger.Ledger
	tel  *telemetry.Telemetry
	wire *wiretrace.Plane
	// Padded indicates senders pad messages; the receiver then strips
	// the length-prefixed padding.
	Padded bool

	// mu guards inbox and dropped: on the real transport, retry
	// watchdogs poll Inbox from timer goroutines while the receiver's
	// dispatcher appends (the simulator serializes both, so it never
	// contends).
	mu      sync.Mutex
	inbox   []Received
	dropped int
}

// NewReceiver creates a receiver and registers it on the network.
func NewReceiver(net simnet.Transport, name string, addr simnet.Addr, padded bool, lg *ledger.Ledger) (*Receiver, error) {
	kp, err := hpke.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("mixnet: receiver key: %w", err)
	}
	r := &Receiver{Name: name, Addr: addr, kp: kp, lg: lg, Padded: padded}
	net.Register(addr, r.handle)
	return r, nil
}

// Info returns the receiver's routing descriptor.
func (r *Receiver) Info() NodeInfo { return NodeInfo{Addr: r.Addr, PubKey: r.kp.PublicKey()} }

// Instrument attaches a telemetry sink: each final delivery (the last
// link of the chain) opens a span under the simulator's delivery span.
func (r *Receiver) Instrument(tel *telemetry.Telemetry) { r.tel = tel }

// InstrumentWire attaches a wire-trace plane: final deliveries open a
// terminal span mirroring the receiver's ledger observations. Nil-safe.
func (r *Receiver) InstrumentWire(p *wiretrace.Plane) { r.wire = p }

func (r *Receiver) handle(net simnet.Transport, msg simnet.Message) {
	sp := r.tel.Start("mixnet.receiver.open", telemetry.A("receiver", r.Name))
	defer sp.End()
	hop := r.wire.Hop(r.Name, "mixnet.deliver", msg.Trace, string(msg.Src), "")
	defer hop.End()
	if len(msg.Payload) < 1 || msg.Payload[0] != tagOnion {
		r.drop()
		return
	}
	inHandle := ledger.Hash(msg.Payload[1:])
	plain, err := open(r.kp, msg.Payload[1:])
	if err != nil {
		r.drop()
		return
	}
	typ, _, inner, err := parseLayer(plain)
	if err != nil || typ != layerDeliver {
		r.drop()
		return
	}
	body := inner
	if r.Padded {
		if len(inner) < 4 {
			r.drop()
			return
		}
		n := int(binary.BigEndian.Uint32(inner))
		if n > len(inner)-4 {
			r.drop()
			return
		}
		body = inner[4 : 4+n]
	}
	if r.lg != nil {
		r.lg.SawBatch(r.Name, []ledger.Entry{
			{Kind: core.Identity, Value: string(msg.Src), Handles: []string{inHandle}},
			{Kind: core.Data, Value: string(body), Handles: []string{inHandle}},
		})
		hop.Observe(core.Identity, string(msg.Src))
		hop.Observe(core.Data, string(body))
	}
	r.mu.Lock()
	r.inbox = append(r.inbox, Received{From: msg.Src, Body: append([]byte(nil), body...), Time: net.Now()})
	r.mu.Unlock()
}

func (r *Receiver) drop() {
	r.mu.Lock()
	r.dropped++
	r.mu.Unlock()
}

// Inbox returns the messages received so far.
func (r *Receiver) Inbox() []Received {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Received(nil), r.inbox...)
}

// Dropped reports undecryptable or malformed deliveries.
func (r *Receiver) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Sender originates onions. It is a thin helper tying a client address
// to BuildOnion + Send.
type Sender struct {
	Addr  simnet.Addr
	PadTo int
	// Wire, when set, opens a client root span per message and attaches
	// its context to the injected onion.
	Wire *wiretrace.Plane
}

// Send wraps message for the route and injects it at the first mix.
func (s *Sender) Send(net simnet.Transport, route []NodeInfo, receiver NodeInfo, message []byte) error {
	onion, err := BuildOnion(route, receiver, message, s.PadTo)
	if err != nil {
		return err
	}
	root := s.Wire.Root(string(s.Addr), "mixnet.send", string(s.Addr), string(route[0].Addr))
	defer root.End()
	return transport.SendWithContext(net, s.Addr, route[0].Addr, append([]byte{tagOnion}, onion...), root.Context())
}

// SendResilient wraps message for a fresh random route and injects it,
// failing over to a different entry mix when the injection fails fast
// (entry inside a crash window). Each attempt draws a new route from
// the network's seeded RNG, so chaos runs remain byte-reproducible.
// Degradation policy: fail-closed — when every attempt fails the
// message errors (wrapping resilience.ErrExhausted) rather than being
// handed to the receiver outside the mixnet. It returns the route that
// was ultimately used, for experiments that need ground truth.
func (s *Sender) SendResilient(net simnet.Transport, pool []NodeInfo, receiver NodeInfo, message []byte, hops int, tel *telemetry.Telemetry) ([]NodeInfo, error) {
	p := resilience.Default("mixnet")
	if len(pool) > p.MaxAttempts {
		p.MaxAttempts = len(pool)
	}
	var route []NodeInfo
	err := resilience.Do(p, tel, uint64(net.Rand(1<<30)), nil, func(attempt int) error {
		r, rerr := RandomRoute(net, pool, hops)
		if rerr != nil {
			return rerr
		}
		if serr := s.Send(net, r, receiver, message); serr != nil {
			return serr
		}
		route = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return route, nil
}

// RandomRoute draws a route of `hops` distinct mixes from pool using
// the network's deterministic RNG — the free-route alternative to a
// fixed cascade. Free routes spread trust across the whole mix pool:
// no single fixed entry mix sees every sender.
func RandomRoute(net simnet.Transport, pool []NodeInfo, hops int) ([]NodeInfo, error) {
	if hops <= 0 || hops > len(pool) {
		return nil, fmt.Errorf("mixnet: cannot pick %d distinct mixes from a pool of %d", hops, len(pool))
	}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher-Yates: shuffle the first `hops` positions.
	for i := 0; i < hops; i++ {
		j := i + net.Rand(len(pool)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	route := make([]NodeInfo, hops)
	for i := 0; i < hops; i++ {
		route[i] = pool[idx[i]]
	}
	return route, nil
}
