package mixnet

import (
	"fmt"
	"testing"
	"time"

	"decoupling/internal/simnet"
)

// Failure-injection tests: the mix network over lossy links. Chaum's
// design has no retransmission (that is the application's job), so the
// properties to hold are graceful degradation and, critically, that
// batching semantics never deadlock surviving messages.

func TestLossyLinksDegradeGracefully(t *testing.T) {
	net := simnet.New(13)
	net.SetDefaultLink(simnet.Link{Latency: time.Millisecond, Loss: 0.2})
	route, _, rcv := buildCascade(t, net, 3, 1, 0, false, nil)
	const senders = 100
	for i := 0; i < senders; i++ {
		s := &Sender{Addr: simnet.Addr(fmt.Sprintf("s%02d", i))}
		if err := s.Send(net, route, rcv.Info(), []byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	got := len(rcv.Inbox())
	// Survival probability per message is (1-0.2)^4 ≈ 0.41 over 4 hops.
	if got == 0 || got == senders {
		t.Errorf("delivered %d of %d at 20%% per-hop loss; expected partial delivery", got, senders)
	}
	if rcv.Dropped() != 0 {
		t.Errorf("receiver dropped %d messages (corruption, not loss?)", rcv.Dropped())
	}
	t.Logf("delivered %d/%d (expected ~%d)", got, senders, int(senders*0.41))
}

// TestBatchTimeoutDrainsAfterLoss: with threshold batching and loss,
// stragglers must still flush via the timeout rather than wait forever
// for lost peers.
func TestBatchTimeoutDrainsAfterLoss(t *testing.T) {
	net := simnet.New(17)
	net.SetDefaultLink(simnet.Link{Latency: time.Millisecond, Loss: 0.5})
	route, _, rcv := buildCascade(t, net, 1, 8, 500*time.Millisecond, false, nil)
	for i := 0; i < 8; i++ {
		s := &Sender{Addr: simnet.Addr(fmt.Sprintf("s%d", i))}
		if err := s.Send(net, route, rcv.Info(), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	// Half the batch (statistically) was lost before the mix; the
	// timeout must have flushed the survivors that reached it.
	arrivedAtMix := int(net.Delivered()) // deliveries include mix->receiver
	if len(rcv.Inbox()) == 0 && arrivedAtMix > 0 {
		t.Errorf("survivors stuck in batch queue: inbox=0, deliveries=%d", arrivedAtMix)
	}
}

// TestRepliesSurviveLossIndependently: reply-block traffic over lossy
// links also degrades without corruption.
func TestRepliesSurviveLossIndependently(t *testing.T) {
	net := simnet.New(23)
	net.SetDefaultLink(simnet.Link{Latency: time.Millisecond, Loss: 0.15})
	route, _, rcv := buildCascade(t, net, 2, 1, 0, false, nil)
	collector := NewReplyCollector(net, "alice")

	const replies = 60
	keys := make([]*ReplyKeys, replies)
	for i := 0; i < replies; i++ {
		ra, k, err := BuildReplyBlock(route, collector.Addr)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
		if err := SendReply(net, rcv.Addr, ra, []byte(fmt.Sprintf("reply %02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	got := len(collector.Inbox())
	if got == 0 || got == replies {
		t.Errorf("delivered %d of %d replies at 15%% loss", got, replies)
	}
	if collector.Dropped() != 0 {
		t.Errorf("collector dropped %d (malformed deliveries)", collector.Dropped())
	}
}
